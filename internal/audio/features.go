package audio

import "math"

// NumClipFeatures is the dimension of the clip-level descriptor of
// ref. [22] (Liu & Huang): 14 features summarising energy, zero-crossing,
// spectral shape and syllable-rate modulation statistics of a ~2 s clip.
const NumClipFeatures = 14

// ClipFeatures computes the 14 clip-level features from a clip. Frames of
// 20 ms with 10 ms hop underlie all statistics. Returns nil for clips too
// short to frame.
func ClipFeatures(samples []float64, sampleRate int) []float64 {
	win := sampleRate / 50 // 20 ms
	hop := sampleRate / 100
	if win < 2 || len(samples) < win {
		return nil
	}
	var energies, zcrs, centroids, rolloffs, bandwidths, fluxes, lowRatios []float64
	var prevSpec []float64
	for start := 0; start+win <= len(samples); start += hop {
		frame := samples[start : start+win]
		var e float64
		zc := 0
		for i, v := range frame {
			e += v * v
			if i > 0 && (v >= 0) != (frame[i-1] >= 0) {
				zc++
			}
		}
		e /= float64(win)
		energies = append(energies, e)
		zcrs = append(zcrs, float64(zc)/float64(win))

		spec := powerSpectrum(frame)
		var total, weighted float64
		for b, p := range spec {
			total += p
			weighted += float64(b) * p
		}
		if total <= 0 {
			total = 1e-12
		}
		cent := weighted / total
		centroids = append(centroids, cent/float64(len(spec)))
		var acc float64
		roll := 0
		for b, p := range spec {
			acc += p
			if acc >= 0.85*total {
				roll = b
				break
			}
		}
		rolloffs = append(rolloffs, float64(roll)/float64(len(spec)))
		var bw float64
		for b, p := range spec {
			d := float64(b) - cent
			bw += d * d * p
		}
		bandwidths = append(bandwidths, math.Sqrt(bw/total)/float64(len(spec)))
		// Low-band (0 – 1/8 Nyquist ≈ 0–500 Hz at 8 kHz) energy ratio.
		var low float64
		for b := 0; b < len(spec)/8; b++ {
			low += spec[b]
		}
		lowRatios = append(lowRatios, low/total)
		if prevSpec != nil {
			var fl float64
			for b := range spec {
				d := spec[b] - prevSpec[b]
				fl += d * d
			}
			fluxes = append(fluxes, math.Sqrt(fl)/(total+1e-12))
		}
		prevSpec = spec
	}
	if len(energies) == 0 {
		return nil
	}

	meanE, stdE := meanStd(energies)
	lowEnergy := ratioBelow(energies, 0.5*meanE)
	silence := ratioBelow(energies, 0.05*meanE)
	meanZ, stdZ := meanStd(zcrs)
	meanC, stdC := meanStd(centroids)
	meanR, _ := meanStd(rolloffs)
	meanB, _ := meanStd(bandwidths)
	meanF, _ := meanStd(fluxes)
	meanLow, _ := meanStd(lowRatios)

	return []float64{
		math.Log(meanE + 1e-12),     // 1 mean energy (log)
		stdE / (meanE + 1e-12),      // 2 energy variation coefficient
		lowEnergy,                   // 3 low-energy frame ratio
		silence,                     // 4 silence ratio
		meanZ,                       // 5 mean zero-crossing rate
		stdZ,                        // 6 ZCR deviation
		meanC,                       // 7 spectral centroid mean
		stdC,                        // 8 spectral centroid deviation
		meanR,                       // 9 spectral rolloff mean
		meanB,                       // 10 spectral bandwidth mean
		meanF,                       // 11 spectral flux mean
		meanLow,                     // 12 low-band energy ratio
		modulation4Hz(energies),     // 13 syllable-rate (4 Hz) modulation
		harmonicity(zcrs, energies), // 14 voiced-frame ratio proxy
	}
}

func meanStd(x []float64) (mean, std float64) {
	if len(x) == 0 {
		return 0, 0
	}
	for _, v := range x {
		mean += v
	}
	mean /= float64(len(x))
	for _, v := range x {
		d := v - mean
		std += d * d
	}
	return mean, math.Sqrt(std / float64(len(x)))
}

func ratioBelow(x []float64, th float64) float64 {
	if len(x) == 0 {
		return 0
	}
	n := 0
	for _, v := range x {
		if v < th {
			n++
		}
	}
	return float64(n) / float64(len(x))
}

// modulation4Hz measures how much of the energy contour's variation sits in
// the 2–8 Hz syllable band — the signature of speech rhythm. The contour is
// sampled at 100 Hz (10 ms hop).
func modulation4Hz(energies []float64) float64 {
	if len(energies) < 16 {
		return 0
	}
	mean, _ := meanStd(energies)
	n := nextPow2(len(energies))
	re := make([]float64, n)
	im := make([]float64, n)
	for i, e := range energies {
		re[i] = e - mean
	}
	fft(re, im)
	contourRate := 100.0
	binHz := contourRate / float64(n)
	var band, total float64
	for b := 1; b < n/2; b++ {
		p := re[b]*re[b] + im[b]*im[b]
		total += p
		hz := float64(b) * binHz
		if hz >= 2 && hz <= 8 {
			band += p
		}
	}
	if total <= 0 {
		return 0
	}
	return band / total
}

// harmonicity approximates the voiced-frame ratio: frames with low ZCR but
// substantial energy are voiced speech; noise has high ZCR at all energies.
func harmonicity(zcrs, energies []float64) float64 {
	if len(zcrs) == 0 {
		return 0
	}
	meanE, _ := meanStd(energies)
	voiced := 0
	for i := range zcrs {
		if zcrs[i] < 0.12 && energies[i] > 0.3*meanE {
			voiced++
		}
	}
	return float64(voiced) / float64(len(zcrs))
}
