package audio

import (
	"fmt"
	"math"
	"math/rand"

	"classminer/internal/mat"
)

// GMM is a diagonal-covariance Gaussian mixture model.
type GMM struct {
	Weights []float64   // mixture weights, sum to 1
	Means   [][]float64 // k × d
	Vars    [][]float64 // k × d diagonal variances
}

const (
	gmmVarFloor = 1e-6
	gmmMaxIter  = 60
)

// TrainGMM fits a k-component diagonal GMM to the rows of x with EM,
// initialised by k-means. rng fixes the initialisation.
func TrainGMM(x [][]float64, k int, rng *rand.Rand) (*GMM, error) {
	if len(x) == 0 {
		return nil, fmt.Errorf("audio: TrainGMM on empty data")
	}
	if k < 1 {
		k = 1
	}
	if k > len(x) {
		k = len(x)
	}
	d := len(x[0])
	km, err := mat.KMeans(x, k, rng, 30)
	if err != nil {
		return nil, err
	}
	g := &GMM{
		Weights: make([]float64, k),
		Means:   mat.NewMatrix(k, d),
		Vars:    mat.NewMatrix(k, d),
	}
	counts := make([]float64, k)
	for i, c := range km.Assignment {
		counts[c]++
		for j, v := range x[i] {
			g.Means[c][j] += v
		}
	}
	for c := 0; c < k; c++ {
		if counts[c] == 0 {
			counts[c] = 1
		}
		for j := 0; j < d; j++ {
			g.Means[c][j] /= counts[c]
		}
		g.Weights[c] = counts[c] / float64(len(x))
	}
	for i, c := range km.Assignment {
		for j, v := range x[i] {
			dv := v - g.Means[c][j]
			g.Vars[c][j] += dv * dv
		}
	}
	for c := 0; c < k; c++ {
		for j := 0; j < d; j++ {
			g.Vars[c][j] = g.Vars[c][j]/counts[c] + gmmVarFloor
		}
	}

	// EM refinement.
	resp := mat.NewMatrix(len(x), k)
	prevLL := math.Inf(-1)
	for iter := 0; iter < gmmMaxIter; iter++ {
		// E step.
		var ll float64
		for i, row := range x {
			var logs []float64
			for c := 0; c < k; c++ {
				logs = append(logs, math.Log(g.Weights[c]+1e-300)+g.logGauss(c, row))
			}
			lse := logSumExp(logs)
			ll += lse
			for c := 0; c < k; c++ {
				resp[i][c] = math.Exp(logs[c] - lse)
			}
		}
		if ll-prevLL < 1e-6*math.Abs(prevLL)+1e-9 && iter > 0 {
			break
		}
		prevLL = ll
		// M step.
		for c := 0; c < k; c++ {
			var nc float64
			mean := make([]float64, d)
			for i := range x {
				nc += resp[i][c]
				for j, v := range x[i] {
					mean[j] += resp[i][c] * v
				}
			}
			if nc < 1e-9 {
				continue
			}
			for j := 0; j < d; j++ {
				mean[j] /= nc
			}
			vars := make([]float64, d)
			for i := range x {
				for j, v := range x[i] {
					dv := v - mean[j]
					vars[j] += resp[i][c] * dv * dv
				}
			}
			for j := 0; j < d; j++ {
				vars[j] = vars[j]/nc + gmmVarFloor
			}
			g.Weights[c] = nc / float64(len(x))
			g.Means[c] = mean
			g.Vars[c] = vars
		}
	}
	return g, nil
}

// logGauss is the log density of component c at v.
func (g *GMM) logGauss(c int, v []float64) float64 {
	var s float64
	for j, m := range g.Means[c] {
		d := v[j] - m
		s += d*d/g.Vars[c][j] + math.Log(2*math.Pi*g.Vars[c][j])
	}
	return -0.5 * s
}

// LogLikelihood returns the log density of v under the mixture.
func (g *GMM) LogLikelihood(v []float64) float64 {
	logs := make([]float64, len(g.Weights))
	for c := range g.Weights {
		logs[c] = math.Log(g.Weights[c]+1e-300) + g.logGauss(c, v)
	}
	return logSumExp(logs)
}

func logSumExp(logs []float64) float64 {
	max := math.Inf(-1)
	for _, l := range logs {
		if l > max {
			max = l
		}
	}
	if math.IsInf(max, -1) {
		return max
	}
	var s float64
	for _, l := range logs {
		s += math.Exp(l - max)
	}
	return max + math.Log(s)
}
