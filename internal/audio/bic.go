package audio

import (
	"fmt"
	"math"

	"classminer/internal/mat"
)

// DefaultPenalty is the BIC penalty factor λ of Eq. (19).
const DefaultPenalty = 1.0

// BICResult reports one speaker-change hypothesis test.
type BICResult struct {
	DeltaBIC float64 // Eq. (19); negative claims a speaker change
	Lambda   float64
	Changed  bool
}

// SpeakerChange runs the §4.2 hypothesis test on the MFCC sequences of two
// representative clips: H0 models both with one multivariate Gaussian, H1
// with one Gaussian each. The likelihood-ratio statistic of Eq. (18) is
//
//	Λ(R) = N/2·log|Σ| − Ni/2·log|Σi| − Nj/2·log|Σj|
//
// and ΔBIC(Λ) = −Λ(R) + λ·P with P = ½(p + ½p(p+1))·log N (Eq. 19).
// ΔBIC < 0 claims a change of speaker between the shots.
func SpeakerChange(clipA, clipB []float64, sampleRate int, lambda float64) (*BICResult, error) {
	xa := MFCCs(clipA, sampleRate)
	xb := MFCCs(clipB, sampleRate)
	return SpeakerChangeMFCC(xa, xb, lambda)
}

// SpeakerChangeMFCC is SpeakerChange on pre-computed MFCC sequences.
func SpeakerChangeMFCC(xa, xb [][]float64, lambda float64) (*BICResult, error) {
	if lambda <= 0 {
		lambda = DefaultPenalty
	}
	p := NumMFCC
	// The covariance of p-dim data needs comfortably more than p samples.
	if len(xa) < 2*p || len(xb) < 2*p {
		return nil, fmt.Errorf("audio: clips too short for BIC (%d and %d MFCC frames, need >= %d)",
			len(xa), len(xb), 2*p)
	}
	all := make([][]float64, 0, len(xa)+len(xb))
	all = append(all, xa...)
	all = append(all, xb...)

	ldAll, err := mat.LogDet(mat.Covariance(all))
	if err != nil {
		return nil, fmt.Errorf("audio: pooled covariance: %w", err)
	}
	ldA, err := mat.LogDet(mat.Covariance(xa))
	if err != nil {
		return nil, fmt.Errorf("audio: clip A covariance: %w", err)
	}
	ldB, err := mat.LogDet(mat.Covariance(xb))
	if err != nil {
		return nil, fmt.Errorf("audio: clip B covariance: %w", err)
	}
	nA, nB := float64(len(xa)), float64(len(xb))
	n := nA + nB
	lambdaR := n/2*ldAll - nA/2*ldA - nB/2*ldB
	penalty := 0.5 * (float64(p) + 0.5*float64(p)*float64(p+1)) * math.Log(n)
	delta := -lambdaR + lambda*penalty
	return &BICResult{DeltaBIC: delta, Lambda: lambda, Changed: delta < 0}, nil
}
