package audio

import (
	"fmt"
	"math"

	"classminer/internal/mat"
)

// DISTBIC-style speaker segmentation (Delacourt & Wellekens, Speech
// Communication 2000 — the paper's ref. [23]): a two-pass segmentation of a
// continuous audio stream into speaker turns. Pass one slides a pair of
// adjacent analysis windows along the MFCC sequence and computes the
// generalised likelihood ratio (the Λ(R) statistic of Eq. 18) as a distance
// curve; significant local maxima become candidate change points. Pass two
// validates every candidate with the penalised ΔBIC test of Eq. (19) on the
// windows flanking it, discarding spurious peaks.

// Turn is one speaker-homogeneous segment, in samples.
type Turn struct {
	StartSample int
	EndSample   int
}

// SegmentConfig tunes SegmentSpeakers. Zero values become defaults.
type SegmentConfig struct {
	// WindowSec is each analysis window's length (default 2 s, the §4.2
	// clip length).
	WindowSec float64
	// HopSec is the distance-curve step (default 0.5 s).
	HopSec float64
	// PeakSigma is how many standard deviations above the curve mean a
	// local maximum must rise to become a candidate (default 0.5).
	PeakSigma float64
	// Lambda is the BIC penalty factor of the validation pass.
	Lambda float64
}

func (c SegmentConfig) withDefaults() SegmentConfig {
	if c.WindowSec <= 0 {
		c.WindowSec = ClipSeconds
	}
	if c.HopSec <= 0 {
		c.HopSec = 0.5
	}
	if c.PeakSigma <= 0 {
		c.PeakSigma = 0.5
	}
	if c.Lambda <= 0 {
		c.Lambda = DefaultPenalty
	}
	return c
}

// SegmentSpeakers partitions the stream into speaker turns. The stream
// must be at least two windows long.
func SegmentSpeakers(samples []float64, sampleRate int, cfg SegmentConfig) ([]Turn, error) {
	cfg = cfg.withDefaults()
	mfcc := MFCCs(samples, sampleRate)
	// MFCC frames advance by the 10 ms hop.
	framesPerSec := int(1 / mfccHopSec)
	win := int(cfg.WindowSec * float64(framesPerSec))
	hop := int(cfg.HopSec * float64(framesPerSec))
	if len(mfcc) < 2*win || win < 2*NumMFCC || hop < 1 {
		return nil, fmt.Errorf("audio: stream too short to segment (%d MFCC frames, need >= %d)", len(mfcc), 2*win)
	}

	// Pass 1: GLR distance curve at every hop position.
	type point struct {
		frame int // MFCC frame index of the candidate boundary
		dist  float64
	}
	var curve []point
	for center := win; center+win <= len(mfcc); center += hop {
		left := mfcc[center-win : center]
		right := mfcc[center : center+win]
		d, err := glr(left, right)
		if err != nil {
			continue
		}
		curve = append(curve, point{frame: center, dist: d})
	}
	if len(curve) == 0 {
		return nil, fmt.Errorf("audio: empty distance curve")
	}
	var mean, std float64
	for _, p := range curve {
		mean += p.dist
	}
	mean /= float64(len(curve))
	for _, p := range curve {
		dv := p.dist - mean
		std += dv * dv
	}
	std = math.Sqrt(std / float64(len(curve)))
	threshold := mean + cfg.PeakSigma*std

	// Candidates: significant local maxima of the curve.
	var candidates []int
	for i := range curve {
		if curve[i].dist < threshold {
			continue
		}
		if i > 0 && curve[i-1].dist > curve[i].dist {
			continue
		}
		if i+1 < len(curve) && curve[i+1].dist >= curve[i].dist {
			continue
		}
		candidates = append(candidates, curve[i].frame)
	}

	// Pass 2: ΔBIC validation of each candidate on its flanking windows.
	samplesPerFrame := sampleRate / framesPerSec
	changes := []int{}
	lastChange := 0
	for _, frame := range candidates {
		if frame-lastChange < win { // keep turns at least one window long
			continue
		}
		left := mfcc[max(frame-win, lastChange):frame]
		hi := frame + win
		if hi > len(mfcc) {
			hi = len(mfcc)
		}
		right := mfcc[frame:hi]
		res, err := SpeakerChangeMFCC(left, right, cfg.Lambda)
		if err != nil || !res.Changed {
			continue
		}
		changes = append(changes, frame)
		lastChange = frame
	}

	// Assemble turns.
	var turns []Turn
	start := 0
	for _, frame := range changes {
		turns = append(turns, Turn{StartSample: start, EndSample: frame * samplesPerFrame})
		start = frame * samplesPerFrame
	}
	turns = append(turns, Turn{StartSample: start, EndSample: len(samples)})
	return turns, nil
}

// glr computes the generalised likelihood ratio statistic Λ(R) of Eq. (18)
// between two MFCC windows (the BIC statistic with no penalty).
func glr(a, b [][]float64) (float64, error) {
	all := make([][]float64, 0, len(a)+len(b))
	all = append(all, a...)
	all = append(all, b...)
	ldAll, err := mat.LogDet(mat.Covariance(all))
	if err != nil {
		return 0, err
	}
	ldA, err := mat.LogDet(mat.Covariance(a))
	if err != nil {
		return 0, err
	}
	ldB, err := mat.LogDet(mat.Covariance(b))
	if err != nil {
		return 0, err
	}
	na, nb := float64(len(a)), float64(len(b))
	return (na+nb)/2*ldAll - na/2*ldA - nb/2*ldB, nil
}
