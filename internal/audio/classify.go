package audio

import (
	"fmt"
	"math"
	"math/rand"
)

// ClipSeconds is the representative-clip length of §4.2: the audio stream
// of each shot is cut into ~2 s clips; shots shorter than 2 s are discarded
// from audio analysis.
const ClipSeconds = 2.0

// SpeechClassifier separates clean speech from non-speech clips with two
// GMMs over the 14 clip features, as in §4.2.
type SpeechClassifier struct {
	speech    *GMM
	nonSpeech *GMM
	mean, std []float64 // feature z-scoring fitted on the training set
}

// TrainSpeechClassifier fits the two GMMs from labelled clips.
func TrainSpeechClassifier(speech, nonSpeech [][]float64, sampleRate int, seed int64) (*SpeechClassifier, error) {
	feats := func(clips [][]float64) ([][]float64, error) {
		var out [][]float64
		for _, c := range clips {
			f := ClipFeatures(c, sampleRate)
			if f != nil {
				out = append(out, f)
			}
		}
		if len(out) == 0 {
			return nil, fmt.Errorf("audio: no usable training clips")
		}
		return out, nil
	}
	fs, err := feats(speech)
	if err != nil {
		return nil, err
	}
	fn, err := feats(nonSpeech)
	if err != nil {
		return nil, err
	}
	c := &SpeechClassifier{}
	c.fitScaler(append(append([][]float64{}, fs...), fn...))
	for i := range fs {
		fs[i] = c.scale(fs[i])
	}
	for i := range fn {
		fn[i] = c.scale(fn[i])
	}
	rng := rand.New(rand.NewSource(seed))
	if c.speech, err = TrainGMM(fs, 2, rng); err != nil {
		return nil, err
	}
	if c.nonSpeech, err = TrainGMM(fn, 2, rng); err != nil {
		return nil, err
	}
	return c, nil
}

func (c *SpeechClassifier) fitScaler(all [][]float64) {
	d := len(all[0])
	c.mean = make([]float64, d)
	c.std = make([]float64, d)
	for _, row := range all {
		for j, v := range row {
			c.mean[j] += v
		}
	}
	for j := range c.mean {
		c.mean[j] /= float64(len(all))
	}
	for _, row := range all {
		for j, v := range row {
			dv := v - c.mean[j]
			c.std[j] += dv * dv
		}
	}
	for j := range c.std {
		c.std[j] = math.Sqrt(c.std[j]/float64(len(all))) + 1e-9
	}
}

func (c *SpeechClassifier) scale(v []float64) []float64 {
	out := make([]float64, len(v))
	for j := range v {
		out[j] = (v[j] - c.mean[j]) / c.std[j]
	}
	return out
}

// Score returns the speech-vs-non-speech log-likelihood ratio of a clip;
// positive means speech. The second return is false when the clip is too
// short to featurise.
func (c *SpeechClassifier) Score(clip []float64, sampleRate int) (float64, bool) {
	f := ClipFeatures(clip, sampleRate)
	if f == nil {
		return 0, false
	}
	z := c.scale(f)
	return c.speech.LogLikelihood(z) - c.nonSpeech.LogLikelihood(z), true
}

// IsSpeech classifies one clip.
func (c *SpeechClassifier) IsSpeech(clip []float64, sampleRate int) bool {
	s, ok := c.Score(clip, sampleRate)
	return ok && s > 0
}

// RepresentativeClip implements the §4.2 selection: the shot's audio is cut
// into adjacent ~2 s clips and the clip most like clean speech is returned.
// ok is false when the shot is shorter than one clip (such shots are
// discarded from audio analysis) or when no clip can be featurised.
func (c *SpeechClassifier) RepresentativeClip(samples []float64, sampleRate int) (clip []float64, score float64, ok bool) {
	n := int(ClipSeconds * float64(sampleRate))
	if len(samples) < n {
		return nil, 0, false
	}
	bestScore := math.Inf(-1)
	for start := 0; start+n <= len(samples); start += n {
		s, valid := c.Score(samples[start:start+n], sampleRate)
		if valid && s > bestScore {
			bestScore = s
			clip = samples[start : start+n]
		}
	}
	if clip == nil {
		return nil, 0, false
	}
	return clip, bestScore, true
}
