package audio

import (
	"math/rand"
	"testing"
)

// stream concatenates per-speaker speech segments into one track and
// returns the true change points in samples.
func stream(speakers []int, secEach float64, seed int64) ([]float64, []int) {
	rng := rand.New(rand.NewSource(seed))
	n := int(secEach * sr)
	var out []float64
	var changes []int
	for i, id := range speakers {
		seg := make([]float64, n)
		synthSpeechInto(seg, id, rng)
		out = append(out, seg...)
		if i > 0 {
			changes = append(changes, i*n)
		}
	}
	return out, changes
}

func TestSegmentSpeakersFindsTurns(t *testing.T) {
	samples, truth := stream([]int{1, 4, 1}, 4.0, 5)
	turns, err := SegmentSpeakers(samples, sr, SegmentConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if len(turns) != 3 {
		t.Fatalf("found %d turns, want 3: %+v", len(turns), turns)
	}
	// Boundaries within ±0.75 s of the scripted changes.
	tol := int(0.75 * sr)
	for i, want := range truth {
		got := turns[i].EndSample
		if got < want-tol || got > want+tol {
			t.Fatalf("change %d at sample %d, want %d ± %d", i, got, want, tol)
		}
	}
	// Turns must tile the stream.
	if turns[0].StartSample != 0 || turns[len(turns)-1].EndSample != len(samples) {
		t.Fatal("turns must cover the stream")
	}
	for i := 1; i < len(turns); i++ {
		if turns[i].StartSample != turns[i-1].EndSample {
			t.Fatal("turns must be contiguous")
		}
	}
}

func TestSegmentSpeakersSingleSpeaker(t *testing.T) {
	samples, _ := stream([]int{2}, 8.0, 6)
	turns, err := SegmentSpeakers(samples, sr, SegmentConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if len(turns) != 1 {
		t.Fatalf("single speaker split into %d turns: %+v", len(turns), turns)
	}
}

func TestSegmentSpeakersTooShort(t *testing.T) {
	if _, err := SegmentSpeakers(make([]float64, sr/2), sr, SegmentConfig{}); err == nil {
		t.Fatal("want too-short error")
	}
}

func TestSegmentSpeakersManyTurns(t *testing.T) {
	samples, truth := stream([]int{1, 4, 2, 5}, 3.5, 7)
	turns, err := SegmentSpeakers(samples, sr, SegmentConfig{})
	if err != nil {
		t.Fatal(err)
	}
	// Recall over the scripted changes with a ±1 s tolerance.
	tol := sr
	found := 0
	for _, want := range truth {
		for _, turn := range turns[:len(turns)-1] {
			if diff := turn.EndSample - want; diff >= -tol && diff <= tol {
				found++
				break
			}
		}
	}
	if found < 2 {
		t.Fatalf("found only %d of %d changes: %+v", found, len(truth), turns)
	}
}
