package audio

import (
	"math"
	"math/rand"
	"sync"
	"testing"

	"classminer/internal/synth"
)

const sr = 8000

// Shared trained classifier: training is the expensive part, reuse it.
var (
	clfOnce sync.Once
	clf     *SpeechClassifier
	clfErr  error
)

func classifier(t testing.TB) *SpeechClassifier {
	t.Helper()
	clfOnce.Do(func() {
		speech, non := synth.TrainingClips(sr, ClipSeconds, 30, 101)
		clf, clfErr = TrainSpeechClassifier(speech, non, sr, 7)
	})
	if clfErr != nil {
		t.Fatal(clfErr)
	}
	return clf
}

func speechClip(speaker int, seconds float64, seed int64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	buf := make([]float64, int(seconds*sr))
	synthSpeechInto(buf, speaker, rng)
	return buf
}

// synthSpeechInto mirrors the generator's voice synthesis via the exported
// synth API (no private access): generate a one-shot script is overkill, so
// reuse TrainingClips-style synthesis through synth.VoiceForSpeaker.
func synthSpeechInto(buf []float64, speaker int, rng *rand.Rand) {
	v := synth.VoiceForSpeaker(speaker)
	// Reimplementation-free path: synth exposes TrainingClips for speech,
	// but per-speaker clips are needed here, so synthesize harmonically.
	nHarm := 30
	for i := range buf {
		t := float64(i) / sr
		env := math.Abs(math.Sin(2 * math.Pi * 3.4 * t))
		var s float64
		for h := 1; h <= nHarm; h++ {
			f := float64(h) * v.F0
			if f > sr/2*0.9 {
				break
			}
			var w float64
			for _, fm := range v.Formants {
				d := (f - fm) / v.Bandwidth
				w += math.Exp(-0.5 * d * d)
			}
			s += (w + 0.02) / float64(h) * math.Sin(2*math.Pi*f*t)
		}
		buf[i] = 0.3*env*s*0.25 + (rng.Float64()*2-1)*0.004
	}
}

func TestFFTKnownFrequency(t *testing.T) {
	n := 256
	re := make([]float64, n)
	im := make([]float64, n)
	for i := range re {
		re[i] = math.Sin(2 * math.Pi * 16 * float64(i) / float64(n))
	}
	fft(re, im)
	// Peak must be at bin 16.
	best, bestMag := 0, 0.0
	for b := 1; b < n/2; b++ {
		mag := re[b]*re[b] + im[b]*im[b]
		if mag > bestMag {
			best, bestMag = b, mag
		}
	}
	if best != 16 {
		t.Fatalf("FFT peak at bin %d, want 16", best)
	}
}

func TestFFTLinearity(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	n := 64
	a := make([]float64, n)
	for i := range a {
		a[i] = rng.NormFloat64()
	}
	re1 := append([]float64(nil), a...)
	im1 := make([]float64, n)
	fft(re1, im1)
	re2 := make([]float64, n)
	for i := range a {
		re2[i] = 2 * a[i]
	}
	im2 := make([]float64, n)
	fft(re2, im2)
	for i := range re1 {
		if math.Abs(re2[i]-2*re1[i]) > 1e-9 {
			t.Fatalf("linearity violated at %d", i)
		}
	}
}

func TestMFCCShape(t *testing.T) {
	clip := speechClip(1, 1.0, 2)
	m := MFCCs(clip, sr)
	// 1 s at 10 ms hop with a 30 ms window: 98 frames.
	if len(m) < 90 || len(m) > 100 {
		t.Fatalf("MFCC frames = %d, want ~98", len(m))
	}
	for _, v := range m {
		if len(v) != NumMFCC {
			t.Fatalf("MFCC dim = %d, want %d", len(v), NumMFCC)
		}
	}
}

func TestMFCCTooShort(t *testing.T) {
	if MFCCs(make([]float64, 10), sr) != nil {
		t.Fatal("too-short clip must yield nil")
	}
}

func TestMFCCDistinguishesSpeakers(t *testing.T) {
	// Same speaker twice vs two different speakers: mean MFCC distance
	// must be clearly larger across speakers.
	a1 := MFCCs(speechClip(1, 1.0, 3), sr)
	a2 := MFCCs(speechClip(1, 1.0, 4), sr)
	b := MFCCs(speechClip(3, 1.0, 5), sr)
	mean := func(x [][]float64) []float64 {
		out := make([]float64, NumMFCC)
		for _, row := range x {
			for j, v := range row {
				out[j] += v
			}
		}
		for j := range out {
			out[j] /= float64(len(x))
		}
		return out
	}
	dist := func(a, b []float64) float64 {
		var s float64
		for i := range a {
			d := a[i] - b[i]
			s += d * d
		}
		return math.Sqrt(s)
	}
	same := dist(mean(a1), mean(a2))
	diff := dist(mean(a1), mean(b))
	if diff < 2*same {
		t.Fatalf("speaker separation too weak: same=%.3f diff=%.3f", same, diff)
	}
}

func TestClipFeaturesShape(t *testing.T) {
	f := ClipFeatures(speechClip(2, 2.0, 6), sr)
	if len(f) != NumClipFeatures {
		t.Fatalf("feature dim = %d, want %d", len(f), NumClipFeatures)
	}
	for i, v := range f {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatalf("feature %d is %v", i, v)
		}
	}
	if ClipFeatures(make([]float64, 5), sr) != nil {
		t.Fatal("too-short clip must yield nil features")
	}
}

func TestSpeechClassifierSeparates(t *testing.T) {
	c := classifier(t)
	// Fresh clips (different seeds from training).
	speech, non := synth.TrainingClips(sr, ClipSeconds, 10, 999)
	correct := 0
	for _, clip := range speech {
		if c.IsSpeech(clip, sr) {
			correct++
		}
	}
	for _, clip := range non {
		if !c.IsSpeech(clip, sr) {
			correct++
		}
	}
	acc := float64(correct) / float64(len(speech)+len(non))
	if acc < 0.85 {
		t.Fatalf("speech classifier accuracy = %.2f, want >= 0.85", acc)
	}
}

func TestRepresentativeClip(t *testing.T) {
	c := classifier(t)
	// A 6 s shot: 2 s ambient, 2 s speech, 2 s ambient. The representative
	// clip must be the speech segment.
	rng := rand.New(rand.NewSource(8))
	shot := make([]float64, 6*sr)
	ambient, _ := synth.TrainingClips(sr, 2, 2, 777)
	copy(shot[0:2*sr], ambient[1])
	copy(shot[2*sr:4*sr], speechClip(2, 2.0, 9))
	copy(shot[4*sr:6*sr], ambient[1])
	_ = rng
	clip, score, ok := c.RepresentativeClip(shot, sr)
	if !ok {
		t.Fatal("representative clip not found")
	}
	if score <= 0 {
		t.Fatalf("representative clip score %.2f should be speech-positive", score)
	}
	if !c.IsSpeech(clip, sr) {
		t.Fatal("representative clip must classify as speech")
	}
}

func TestRepresentativeClipTooShort(t *testing.T) {
	c := classifier(t)
	if _, _, ok := c.RepresentativeClip(make([]float64, sr), sr); ok {
		t.Fatal("sub-2s shot must be discarded")
	}
}

func TestBICSameSpeakerNoChange(t *testing.T) {
	a := speechClip(2, 2.0, 10)
	b := speechClip(2, 2.0, 11)
	res, err := SpeakerChange(a, b, sr, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Changed {
		t.Fatalf("same speaker flagged as change (ΔBIC = %.1f)", res.DeltaBIC)
	}
}

func TestBICDifferentSpeakersChange(t *testing.T) {
	a := speechClip(1, 2.0, 12)
	b := speechClip(4, 2.0, 13)
	res, err := SpeakerChange(a, b, sr, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Changed {
		t.Fatalf("different speakers not flagged (ΔBIC = %.1f)", res.DeltaBIC)
	}
}

func TestBICTooShort(t *testing.T) {
	if _, err := SpeakerChange(make([]float64, 100), make([]float64, 100), sr, 0); err == nil {
		t.Fatal("want error for too-short clips")
	}
}

func TestGMMTrainAndScore(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	var x [][]float64
	for i := 0; i < 100; i++ {
		x = append(x, []float64{rng.NormFloat64() * 0.3, 5 + rng.NormFloat64()*0.3})
		x = append(x, []float64{4 + rng.NormFloat64()*0.3, rng.NormFloat64() * 0.3})
	}
	g, err := TrainGMM(x, 2, rng)
	if err != nil {
		t.Fatal(err)
	}
	inlier := g.LogLikelihood([]float64{0, 5})
	outlier := g.LogLikelihood([]float64{10, 10})
	if inlier <= outlier {
		t.Fatalf("GMM scores inverted: inlier %.2f, outlier %.2f", inlier, outlier)
	}
	var wsum float64
	for _, w := range g.Weights {
		wsum += w
	}
	if math.Abs(wsum-1) > 1e-6 {
		t.Fatalf("weights sum to %v", wsum)
	}
}

func TestGMMErrors(t *testing.T) {
	if _, err := TrainGMM(nil, 2, rand.New(rand.NewSource(1))); err == nil {
		t.Fatal("want error on empty data")
	}
}

func BenchmarkMFCCs(b *testing.B) {
	clip := speechClip(1, 2.0, 15)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MFCCs(clip, sr)
	}
}

func BenchmarkSpeakerChange(b *testing.B) {
	a := speechClip(1, 2.0, 16)
	c := speechClip(3, 2.0, 17)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := SpeakerChange(a, c, sr, 0); err != nil {
			b.Fatal(err)
		}
	}
}
