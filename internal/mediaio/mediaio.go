// Package mediaio converts the internal media model to and from standard
// interchange formats: PNG for frames (storyboards, skim keyframes) and
// WAV (PCM16) for audio tracks. It is the bridge between the synthetic
// substrate and external tools.
package mediaio

import (
	"encoding/binary"
	"fmt"
	"image"
	"image/color"
	"image/png"
	"io"

	"classminer/internal/vidmodel"
)

// WritePNG encodes a frame as PNG.
func WritePNG(w io.Writer, f *vidmodel.Frame) error {
	if f == nil || f.W <= 0 || f.H <= 0 {
		return fmt.Errorf("mediaio: empty frame")
	}
	img := image.NewRGBA(image.Rect(0, 0, f.W, f.H))
	for y := 0; y < f.H; y++ {
		for x := 0; x < f.W; x++ {
			r, g, b := f.At(x, y)
			img.SetRGBA(x, y, color.RGBA{R: r, G: g, B: b, A: 255})
		}
	}
	return png.Encode(w, img)
}

// ReadPNG decodes a PNG into a frame.
func ReadPNG(r io.Reader) (*vidmodel.Frame, error) {
	img, err := png.Decode(r)
	if err != nil {
		return nil, fmt.Errorf("mediaio: %w", err)
	}
	bounds := img.Bounds()
	f := vidmodel.NewFrame(bounds.Dx(), bounds.Dy())
	for y := 0; y < f.H; y++ {
		for x := 0; x < f.W; x++ {
			r16, g16, b16, _ := img.At(bounds.Min.X+x, bounds.Min.Y+y).RGBA()
			f.Set(x, y, byte(r16>>8), byte(g16>>8), byte(b16>>8))
		}
	}
	return f, nil
}

// WriteWAV encodes a mono audio track as 16-bit PCM WAV.
func WriteWAV(w io.Writer, a *vidmodel.AudioTrack) error {
	if a == nil || a.SampleRate <= 0 {
		return fmt.Errorf("mediaio: invalid audio track")
	}
	dataLen := uint32(len(a.Samples) * 2)
	var header []byte
	header = append(header, "RIFF"...)
	header = binary.LittleEndian.AppendUint32(header, 36+dataLen)
	header = append(header, "WAVE"...)
	header = append(header, "fmt "...)
	header = binary.LittleEndian.AppendUint32(header, 16)
	header = binary.LittleEndian.AppendUint16(header, 1) // PCM
	header = binary.LittleEndian.AppendUint16(header, 1) // mono
	header = binary.LittleEndian.AppendUint32(header, uint32(a.SampleRate))
	header = binary.LittleEndian.AppendUint32(header, uint32(a.SampleRate*2)) // byte rate
	header = binary.LittleEndian.AppendUint16(header, 2)                      // block align
	header = binary.LittleEndian.AppendUint16(header, 16)                     // bits
	header = append(header, "data"...)
	header = binary.LittleEndian.AppendUint32(header, dataLen)
	if _, err := w.Write(header); err != nil {
		return err
	}
	buf := make([]byte, 2*len(a.Samples))
	for i, s := range a.Samples {
		v := s
		if v > 1 {
			v = 1
		}
		if v < -1 {
			v = -1
		}
		binary.LittleEndian.PutUint16(buf[i*2:], uint16(int16(v*32767)))
	}
	_, err := w.Write(buf)
	return err
}

// ReadWAV decodes a mono 16-bit PCM WAV into an audio track.
func ReadWAV(r io.Reader) (*vidmodel.AudioTrack, error) {
	header := make([]byte, 44)
	if _, err := io.ReadFull(r, header); err != nil {
		return nil, fmt.Errorf("mediaio: short WAV header: %w", err)
	}
	if string(header[0:4]) != "RIFF" || string(header[8:12]) != "WAVE" {
		return nil, fmt.Errorf("mediaio: not a WAV stream")
	}
	if binary.LittleEndian.Uint16(header[20:]) != 1 {
		return nil, fmt.Errorf("mediaio: only PCM WAV supported")
	}
	if binary.LittleEndian.Uint16(header[22:]) != 1 {
		return nil, fmt.Errorf("mediaio: only mono WAV supported")
	}
	if bits := binary.LittleEndian.Uint16(header[34:]); bits != 16 {
		return nil, fmt.Errorf("mediaio: only 16-bit WAV supported, got %d", bits)
	}
	track := &vidmodel.AudioTrack{SampleRate: int(binary.LittleEndian.Uint32(header[24:]))}
	dataLen := binary.LittleEndian.Uint32(header[40:])
	buf, err := io.ReadAll(io.LimitReader(r, int64(dataLen)))
	if err != nil {
		return nil, err
	}
	for i := 0; i+1 < len(buf); i += 2 {
		track.Samples = append(track.Samples, float64(int16(binary.LittleEndian.Uint16(buf[i:])))/32767)
	}
	return track, nil
}
