package mediaio

import (
	"bytes"
	"math"
	"math/rand"
	"strings"
	"testing"

	"classminer/internal/vidmodel"
)

func TestPNGRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	f := vidmodel.NewFrame(17, 11)
	for i := range f.Pix {
		f.Pix[i] = byte(rng.Intn(256))
	}
	var buf bytes.Buffer
	if err := WritePNG(&buf, f); err != nil {
		t.Fatal(err)
	}
	back, err := ReadPNG(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.W != f.W || back.H != f.H {
		t.Fatalf("geometry %dx%d, want %dx%d", back.W, back.H, f.W, f.H)
	}
	for i := range f.Pix {
		if f.Pix[i] != back.Pix[i] {
			t.Fatalf("pixel byte %d differs", i)
		}
	}
}

func TestPNGErrors(t *testing.T) {
	var buf bytes.Buffer
	if err := WritePNG(&buf, nil); err == nil {
		t.Fatal("want nil-frame error")
	}
	if _, err := ReadPNG(strings.NewReader("not a png")); err == nil {
		t.Fatal("want decode error")
	}
}

func TestWAVRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	a := &vidmodel.AudioTrack{SampleRate: 8000}
	for i := 0; i < 4000; i++ {
		a.Samples = append(a.Samples, math.Sin(float64(i)*0.05)*0.8+rng.Float64()*0.01)
	}
	var buf bytes.Buffer
	if err := WriteWAV(&buf, a); err != nil {
		t.Fatal(err)
	}
	back, err := ReadWAV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.SampleRate != 8000 {
		t.Fatalf("sample rate = %d", back.SampleRate)
	}
	if len(back.Samples) != len(a.Samples) {
		t.Fatalf("samples = %d, want %d", len(back.Samples), len(a.Samples))
	}
	for i := range a.Samples {
		if math.Abs(a.Samples[i]-back.Samples[i]) > 1.0/32000 {
			t.Fatalf("sample %d: %v vs %v", i, a.Samples[i], back.Samples[i])
		}
	}
}

func TestWAVClipsOutOfRange(t *testing.T) {
	a := &vidmodel.AudioTrack{SampleRate: 8000, Samples: []float64{2.5, -3.0}}
	var buf bytes.Buffer
	if err := WriteWAV(&buf, a); err != nil {
		t.Fatal(err)
	}
	back, err := ReadWAV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Samples[0] < 0.99 || back.Samples[1] > -0.99 {
		t.Fatalf("clipping failed: %v", back.Samples)
	}
}

func TestWAVErrors(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteWAV(&buf, nil); err == nil {
		t.Fatal("want nil-track error")
	}
	if _, err := ReadWAV(strings.NewReader("short")); err == nil {
		t.Fatal("want short-header error")
	}
	if _, err := ReadWAV(strings.NewReader(strings.Repeat("x", 44))); err == nil {
		t.Fatal("want bad-magic error")
	}
}
