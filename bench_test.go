package classminer

// One benchmark per table and figure of the paper's evaluation section,
// plus ablation benches for the pipeline's load-bearing design choices
// (adaptive thresholds, PCS clustering, multi-center index nodes,
// dimensionality reduction). Each bench re-runs the experiment's
// computational core per iteration and reports the headline quantities via
// b.ReportMetric, so `go test -bench=.` regenerates both the numbers and
// their cost. Serving-layer latency benches live in server_bench_test.go.

import (
	"math/rand"
	"sync"
	"testing"

	"classminer/internal/audio"
	"classminer/internal/baseline"
	"classminer/internal/cluster"
	"classminer/internal/core"
	"classminer/internal/eval"
	"classminer/internal/event"
	"classminer/internal/index"
	"classminer/internal/shotdet"
	"classminer/internal/structure"
	"classminer/internal/synth"
	"classminer/internal/vidmodel"
)

// benchScale keeps per-iteration work bounded; regenerate the full-scale
// numbers with `go run ./cmd/experiments -scale 1.0`.
const benchScale = 0.4

// benchCorpus caches generated videos and detected shots across benches.
type benchCorpusT struct {
	videos []*vidmodel.Video
	shots  [][]*vidmodel.Shot
}

var (
	benchOnce   sync.Once
	benchCorpus benchCorpusT
	benchErr    error
)

func corpus(b *testing.B) *benchCorpusT {
	b.Helper()
	benchOnce.Do(func() {
		scripts := synth.CorpusScripts(benchScale, 2003)
		for vi, script := range scripts {
			v, err := synth.Generate(synth.DefaultConfig(), script, 2003+int64(vi)*7919)
			if err != nil {
				benchErr = err
				return
			}
			shots, _, err := shotdet.Detect(v, shotdet.Config{})
			if err != nil {
				benchErr = err
				return
			}
			benchCorpus.videos = append(benchCorpus.videos, v)
			benchCorpus.shots = append(benchCorpus.shots, shots)
		}
	})
	if benchErr != nil {
		b.Fatal(benchErr)
	}
	return &benchCorpus
}

// BenchmarkFig05ShotDetection regenerates Fig. 5: windowed adaptive-
// threshold shot-cut detection. Metrics: boundary recall and precision.
func BenchmarkFig05ShotDetection(b *testing.B) {
	c := corpus(b)
	v := c.videos[0]
	b.ResetTimer()
	var recall, precision float64
	for i := 0; i < b.N; i++ {
		shots, _, err := shotdet.Detect(v, shotdet.Config{})
		if err != nil {
			b.Fatal(err)
		}
		recall, precision = boundaryScore(shots, v.Truth.ShotStarts)
	}
	b.ReportMetric(recall, "recall")
	b.ReportMetric(precision, "precision")
}

func boundaryScore(shots []*vidmodel.Shot, truth []int) (recall, precision float64) {
	var starts []int
	for _, s := range shots[1:] {
		starts = append(starts, s.Start)
	}
	match := func(a, bs []int) int {
		n := 0
		for _, x := range a {
			for _, y := range bs {
				if x-y <= 1 && y-x <= 1 {
					n++
					break
				}
			}
		}
		return n
	}
	trueCuts := truth[1:]
	if len(trueCuts) == 0 || len(starts) == 0 {
		return 0, 0
	}
	return float64(match(trueCuts, starts)) / float64(len(trueCuts)),
		float64(match(starts, trueCuts)) / float64(len(starts))
}

// runMethods applies methods A, B, C to the cached corpus and aggregates
// Eq. (20) precision and Eq. (21) CRF.
func runMethods(b *testing.B, c *benchCorpusT) map[string][2]float64 {
	b.Helper()
	right := map[string]int{}
	total := map[string]int{}
	shotsN := 0
	for vi, v := range c.videos {
		shots := c.shots[vi]
		shotsN += len(shots)
		gres, err := structure.DetectGroups(shots, structure.GroupConfig{})
		if err != nil {
			b.Fatal(err)
		}
		sres, err := structure.MergeScenes(gres.Groups, structure.SceneConfig{})
		if err != nil {
			b.Fatal(err)
		}
		bres, err := baseline.RuiTOC(shots, baseline.RuiConfig{})
		if err != nil {
			b.Fatal(err)
		}
		cres, err := baseline.LinZhang(shots, baseline.LinConfig{})
		if err != nil {
			b.Fatal(err)
		}
		for m, scenes := range map[string][]*vidmodel.Scene{"A": sres.Scenes, "B": bres.Scenes, "C": cres.Scenes} {
			r, t, _ := eval.ScenePrecision(scenes, v.Truth)
			right[m] += r
			total[m] += t
		}
	}
	out := map[string][2]float64{}
	for _, m := range []string{"A", "B", "C"} {
		p := 0.0
		if total[m] > 0 {
			p = float64(right[m]) / float64(total[m])
		}
		out[m] = [2]float64{p, eval.CRF(total[m], shotsN)}
	}
	return out
}

// BenchmarkFig12ScenePrecision regenerates Fig. 12 (precision per method).
func BenchmarkFig12ScenePrecision(b *testing.B) {
	c := corpus(b)
	b.ResetTimer()
	var res map[string][2]float64
	for i := 0; i < b.N; i++ {
		res = runMethods(b, c)
	}
	b.ReportMetric(res["A"][0], "P(A)")
	b.ReportMetric(res["B"][0], "P(B)")
	b.ReportMetric(res["C"][0], "P(C)")
}

// BenchmarkFig13CompressionRate regenerates Fig. 13 (CRF per method).
func BenchmarkFig13CompressionRate(b *testing.B) {
	c := corpus(b)
	b.ResetTimer()
	var res map[string][2]float64
	for i := 0; i < b.N; i++ {
		res = runMethods(b, c)
	}
	b.ReportMetric(res["A"][1], "CRF(A)")
	b.ReportMetric(res["B"][1], "CRF(B)")
	b.ReportMetric(res["C"][1], "CRF(C)")
}

// table1State caches the trained classifier and gathered evidence so the
// bench times the per-scene mining decisions.
type table1StateT struct {
	miner    *event.Miner
	scenes   []*vidmodel.Scene
	truth    []vidmodel.EventKind
	evidence []map[int]*event.ShotEvidence
	sceneVid []int
}

var (
	table1Once  sync.Once
	table1State table1StateT
	table1Err   error
)

func table1(b *testing.B) *table1StateT {
	b.Helper()
	c := corpus(b)
	table1Once.Do(func() {
		speech, non := synth.TrainingClips(8000, audio.ClipSeconds, 30, 404)
		clf, err := audio.TrainSpeechClassifier(speech, non, 8000, 17)
		if err != nil {
			table1Err = err
			return
		}
		miner, err := event.NewMiner(clf, event.Config{SampleRate: 8000})
		if err != nil {
			table1Err = err
			return
		}
		table1State.miner = miner
		for vi, v := range c.videos {
			evidence := miner.GatherEvidence(v, c.shots[vi])
			table1State.evidence = append(table1State.evidence, evidence)
			for _, ts := range v.Truth.Scenes {
				if ts.Event == vidmodel.EventUnknown {
					continue
				}
				var members []*vidmodel.Shot
				for _, s := range c.shots[vi] {
					mid := (s.Start + s.End) / 2
					if mid >= ts.StartFrame && mid < ts.EndFrame {
						members = append(members, s)
					}
				}
				if len(members) == 0 {
					continue
				}
				gres, err := structure.DetectGroups(members, structure.GroupConfig{})
				if err != nil {
					table1Err = err
					return
				}
				table1State.scenes = append(table1State.scenes, &vidmodel.Scene{Groups: gres.Groups})
				table1State.truth = append(table1State.truth, ts.Event)
				table1State.sceneVid = append(table1State.sceneVid, vi)
			}
		}
	})
	if table1Err != nil {
		b.Fatal(table1Err)
	}
	return &table1State
}

// BenchmarkTable1EventMining regenerates Table 1: event mining over
// benchmark scenes. Metrics: average precision and recall.
func BenchmarkTable1EventMining(b *testing.B) {
	st := table1(b)
	b.ResetTimer()
	var pr, re float64
	for i := 0; i < b.N; i++ {
		sn, dn, tn := 0, 0, 0
		for si, sc := range st.scenes {
			got := st.miner.MineScene(sc, st.evidence[st.sceneVid[si]])
			sn++
			if got != vidmodel.EventUnknown {
				dn++
			}
			if got == st.truth[si] {
				tn++
			}
		}
		pr, re = safeDiv(tn, dn), safeDiv(tn, sn)
	}
	b.ReportMetric(pr, "PR(avg)")
	b.ReportMetric(re, "RE(avg)")
}

func safeDiv(a, b int) float64 {
	if b == 0 {
		return 0
	}
	return float64(a) / float64(b)
}

// sec62State caches index entries and the built index.
type sec62StateT struct {
	entries []*index.Entry
	ix      *index.Index
}

var (
	sec62Once  sync.Once
	sec62State sec62StateT
	sec62Err   error
)

func sec62(b *testing.B) *sec62StateT {
	b.Helper()
	c := corpus(b)
	sec62Once.Do(func() {
		for vi, v := range c.videos {
			for _, s := range c.shots[vi] {
				kind := vidmodel.EventUnknown
				if ti := v.Truth.SceneAt((s.Start + s.End) / 2); ti >= 0 {
					kind = v.Truth.Scenes[ti].Event
				}
				leaf := "medicine/other"
				switch kind {
				case vidmodel.EventPresentation:
					leaf = "medicine/presentation"
				case vidmodel.EventDialog:
					leaf = "medicine/dialog"
				case vidmodel.EventClinicalOperation:
					leaf = "medicine/clinical operation"
				}
				sec62State.entries = append(sec62State.entries, &index.Entry{
					VideoName: v.Name, Shot: s,
					Path: []string{"medical education", "medicine", leaf},
				})
			}
		}
		sec62State.ix, sec62Err = index.Build(sec62State.entries, index.Options{Seed: 9})
	})
	if sec62Err != nil {
		b.Fatal(sec62Err)
	}
	return &sec62State
}

// BenchmarkSec62FlatSearch times the Eq. (24) baseline: full-database,
// full-dimension scan plus ranking.
func BenchmarkSec62FlatSearch(b *testing.B) {
	st := sec62(b)
	q := st.entries[len(st.entries)/3].Shot.Feature()
	b.ResetTimer()
	var stats index.Stats
	for i := 0; i < b.N; i++ {
		_, stats = index.FlatSearch(st.entries, q, 10)
	}
	b.ReportMetric(float64(stats.FloatOps), "float-ops")
	b.ReportMetric(float64(stats.Candidates), "ranked")
}

// BenchmarkSec62HierSearch times the Eq. (25) path: multi-center descent,
// hash-bucket candidates, subspace ranking.
func BenchmarkSec62HierSearch(b *testing.B) {
	st := sec62(b)
	q := st.entries[len(st.entries)/3].Shot.Feature()
	b.ResetTimer()
	var stats index.Stats
	for i := 0; i < b.N; i++ {
		_, stats = st.ix.Search(q, 10)
	}
	b.ReportMetric(float64(stats.FloatOps), "float-ops")
	b.ReportMetric(float64(stats.Candidates), "ranked")
}

// skimState caches one fully analysed corpus video.
var (
	skimOnce   sync.Once
	skimResult *core.Result
	skimErr    error
)

func skimRes(b *testing.B) *core.Result {
	b.Helper()
	c := corpus(b)
	skimOnce.Do(func() {
		analyzer, err := core.NewAnalyzer(core.Options{SkipEvents: true})
		if err != nil {
			skimErr = err
			return
		}
		skimResult, skimErr = analyzer.Analyze(c.videos[0])
	})
	if skimErr != nil {
		b.Fatal(skimErr)
	}
	return skimResult
}

// BenchmarkFig14SkimQuality regenerates Fig. 14: the simulated viewer
// panel over the four skim levels. Metrics: level-3 scores (the knee).
func BenchmarkFig14SkimQuality(b *testing.B) {
	res := skimRes(b)
	c := corpus(b)
	rng := rand.New(rand.NewSource(7))
	b.ResetTimer()
	var s3 eval.SkimScores
	for i := 0; i < b.N; i++ {
		for l := 1; l <= 4; l++ {
			sc := eval.ScoreSkim(res.Skim, skimLevel(l), c.videos[0].Truth, rng)
			if l == 3 {
				s3 = sc
			}
		}
	}
	b.ReportMetric(s3.Q1, "Q1(l3)")
	b.ReportMetric(s3.Q2, "Q2(l3)")
	b.ReportMetric(s3.Q3, "Q3(l3)")
}

func skimLevel(l int) (out SkimLevel) { return SkimLevel(l) }

// BenchmarkFig15FCR regenerates Fig. 15: frame compression ratio per level.
func BenchmarkFig15FCR(b *testing.B) {
	res := skimRes(b)
	b.ResetTimer()
	var f1, f4 float64
	for i := 0; i < b.N; i++ {
		f1 = res.Skim.FCR(SkimLevel1)
		f4 = res.Skim.FCR(SkimLevel4)
	}
	b.ReportMetric(f1, "FCR(l1)")
	b.ReportMetric(f4, "FCR(l4)")
}

// ---------------------------------------------------------------------------
// Ablations.

// truthScenes builds truth-aligned scenes with cluster labels for purity
// scoring.
func truthScenes(b *testing.B, c *benchCorpusT, vi int) ([]*vidmodel.Scene, map[*vidmodel.Scene]int) {
	b.Helper()
	v := c.videos[vi]
	var scenes []*vidmodel.Scene
	labels := map[*vidmodel.Scene]int{}
	for _, ts := range v.Truth.Scenes {
		var members []*vidmodel.Shot
		for _, s := range c.shots[vi] {
			mid := (s.Start + s.End) / 2
			if mid >= ts.StartFrame && mid < ts.EndFrame {
				members = append(members, s)
			}
		}
		if len(members) == 0 {
			continue
		}
		gres, err := structure.DetectGroups(members, structure.GroupConfig{})
		if err != nil {
			b.Fatal(err)
		}
		sc := &vidmodel.Scene{Index: len(scenes), Groups: gres.Groups}
		sc.RepGroup = structure.SelectRepGroup(sc)
		scenes = append(scenes, sc)
		labels[sc] = ts.ClusterID
	}
	return scenes, labels
}

// clusterPurity scores a clustering against ground-truth cluster IDs:
// weighted fraction of each cluster's scenes sharing its dominant ID.
func clusterPurity(clusters []*vidmodel.ClusteredScene, labels map[*vidmodel.Scene]int) float64 {
	total, pure := 0, 0
	for _, c := range clusters {
		counts := map[int]int{}
		for _, s := range c.Scenes {
			counts[labels[s]]++
		}
		best := 0
		for _, n := range counts {
			if n > best {
				best = n
			}
		}
		pure += best
		total += len(c.Scenes)
	}
	if total == 0 {
		return 0
	}
	return float64(pure) / float64(total)
}

// BenchmarkAblationPCSvsKMeans compares the seedless Pairwise Cluster
// Scheme against seeded k-means (§3.5's motivation). Metrics: purity of
// each and k-means' seed sensitivity (purity spread across seeds).
func BenchmarkAblationPCSvsKMeans(b *testing.B) {
	c := corpus(b)
	scenes, labels := truthScenes(b, c, 0)
	b.ResetTimer()
	var pcsP, kmP, kmSpread float64
	for i := 0; i < b.N; i++ {
		pres, err := cluster.ClusterScenes(scenes, cluster.Options{})
		if err != nil {
			b.Fatal(err)
		}
		pcsP = clusterPurity(pres.Clusters, labels)
		lo, hi, sum := 1.0, 0.0, 0.0
		const seeds = 5
		for s := int64(0); s < seeds; s++ {
			kres, err := cluster.KMeansScenes(scenes, pres.OptimalN, rand.New(rand.NewSource(s)))
			if err != nil {
				b.Fatal(err)
			}
			p := clusterPurity(kres.Clusters, labels)
			sum += p
			if p < lo {
				lo = p
			}
			if p > hi {
				hi = p
			}
		}
		kmP = sum / seeds
		kmSpread = hi - lo
	}
	b.ReportMetric(pcsP, "purity(PCS)")
	b.ReportMetric(kmP, "purity(kmeans)")
	b.ReportMetric(kmSpread, "kmeans-seed-spread")
}

// BenchmarkAblationAdaptiveThreshold compares the windowed locally
// adaptive shot threshold against one global threshold (window = whole
// video), the §3.1 claim. Metrics: boundary F1 of both.
func BenchmarkAblationAdaptiveThreshold(b *testing.B) {
	c := corpus(b)
	v := c.videos[0]
	b.ResetTimer()
	var f1Local, f1Global float64
	for i := 0; i < b.N; i++ {
		local, _, err := shotdet.Detect(v, shotdet.Config{})
		if err != nil {
			b.Fatal(err)
		}
		global, _, err := shotdet.Detect(v, shotdet.Config{Window: 1 << 20})
		if err != nil {
			b.Fatal(err)
		}
		r1, p1 := boundaryScore(local, v.Truth.ShotStarts)
		r2, p2 := boundaryScore(global, v.Truth.ShotStarts)
		f1Local = f1(r1, p1)
		f1Global = f1(r2, p2)
	}
	b.ReportMetric(f1Local, "F1(adaptive)")
	b.ReportMetric(f1Global, "F1(global)")
}

func f1(r, p float64) float64 {
	if r+p == 0 {
		return 0
	}
	return 2 * r * p / (r + p)
}

// BenchmarkAblationClusterValidity compares the ρ(N) validity analysis of
// Eqs. (14)–(16) against the fixed 40 % reduction the paper rejects.
func BenchmarkAblationClusterValidity(b *testing.B) {
	c := corpus(b)
	scenes, labels := truthScenes(b, c, 0)
	b.ResetTimer()
	var validityP, fixedP float64
	for i := 0; i < b.N; i++ {
		auto, err := cluster.ClusterScenes(scenes, cluster.Options{})
		if err != nil {
			b.Fatal(err)
		}
		fixedN := len(scenes) * 6 / 10 // "reduce by 40%"
		if fixedN < 1 {
			fixedN = 1
		}
		fixed, err := cluster.ClusterScenes(scenes, cluster.Options{N: fixedN})
		if err != nil {
			b.Fatal(err)
		}
		validityP = clusterPurity(auto.Clusters, labels)
		fixedP = clusterPurity(fixed.Clusters, labels)
	}
	b.ReportMetric(validityP, "purity(validity)")
	b.ReportMetric(fixedP, "purity(fixed40)")
}

// BenchmarkAblationMultiCenter compares multi-center non-leaf index nodes
// (the paper's choice) against single-center nodes. Metrics: top-1
// flat-scan agreement of each.
func BenchmarkAblationMultiCenter(b *testing.B) {
	st := sec62(b)
	multi, err := index.Build(st.entries, index.Options{Centers: 3, Seed: 4})
	if err != nil {
		b.Fatal(err)
	}
	single, err := index.Build(st.entries, index.Options{Centers: 1, Seed: 4})
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(12))
	b.ResetTimer()
	var aMulti, aSingle float64
	for i := 0; i < b.N; i++ {
		const trials = 20
		mHit, sHit := 0, 0
		for t := 0; t < trials; t++ {
			q := st.entries[rng.Intn(len(st.entries))].Shot.Feature()
			flat, _ := index.FlatSearch(st.entries, q, 1)
			if topAgree(multi, q, flat[0].Entry) {
				mHit++
			}
			if topAgree(single, q, flat[0].Entry) {
				sHit++
			}
		}
		aMulti = float64(mHit) / trials
		aSingle = float64(sHit) / trials
	}
	b.ReportMetric(aMulti, "agree(multi)")
	b.ReportMetric(aSingle, "agree(single)")
}

func topAgree(ix *index.Index, q []float64, want *index.Entry) bool {
	hits, _ := ix.Search(q, 5)
	for _, h := range hits {
		if h.Entry == want {
			return true
		}
	}
	return false
}

// BenchmarkAblationDimReduction compares the default reduced-subspace
// index against a near-full-dimension one (§6.2: discriminating features
// shrink the per-comparison cost). Metrics: float-ops of each.
func BenchmarkAblationDimReduction(b *testing.B) {
	st := sec62(b)
	reduced := st.ix
	full, err := index.Build(st.entries, index.Options{SelectDims: 266, PCADims: 64, Seed: 4})
	if err != nil {
		b.Fatal(err)
	}
	q := st.entries[7].Shot.Feature()
	b.ResetTimer()
	var opsReduced, opsFull float64
	for i := 0; i < b.N; i++ {
		_, rs := reduced.Search(q, 10)
		_, fs := full.Search(q, 10)
		opsReduced = float64(rs.FloatOps)
		opsFull = float64(fs.FloatOps)
	}
	b.ReportMetric(opsReduced, "float-ops(reduced)")
	b.ReportMetric(opsFull, "float-ops(full)")
}
