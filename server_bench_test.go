package classminer_test

// Query-path latency benchmarks for the serving layer, alongside the
// paper-figure benches in bench_test.go. BenchmarkServerSearch measures the
// full uncached HTTP round trip (auth middleware, JSON decode, hierarchical
// index search, policy filter, JSON encode); BenchmarkServerSearchCached
// measures the LRU fast path. Future PRs optimising the query path should
// watch both.

import (
	"bytes"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"

	"classminer"
	"classminer/internal/access"
	"classminer/internal/server"
	"classminer/internal/synth"
)

var (
	srvOnce sync.Once
	srvLib  *classminer.Library
	srvErr  error
)

func benchLibrary(b testing.TB) *classminer.Library {
	b.Helper()
	srvOnce.Do(func() {
		a, err := classminer.NewAnalyzer(classminer.Options{SkipEvents: true})
		if err != nil {
			srvErr = err
			return
		}
		srvLib = classminer.NewLibrary(a)
		script := synth.CorpusScript("laparoscopy", 0.3, 2003)
		v, err := synth.Generate(synth.DefaultConfig(), script, 2003)
		if err != nil {
			srvErr = err
			return
		}
		if _, err := srvLib.AddVideo(v, "medicine"); err != nil {
			srvErr = err
			return
		}
		srvErr = srvLib.BuildIndex()
	})
	if srvErr != nil {
		b.Fatal(srvErr)
	}
	return srvLib
}

func benchServer(b testing.TB, cacheSize int) *server.Server {
	b.Helper()
	anon := access.User{Name: "bench", Clearance: access.Administrator}
	// Admission fully on: concurrency gates and request deadlines at their
	// defaults, rate limiting explicitly enabled (at a rate the benchmark
	// cannot exhaust) so the per-request limiter cost is measured. The
	// ≤43 allocs/op contract holds with the whole stack active.
	s := server.New(benchLibrary(b), server.Options{
		Anonymous: &anon,
		CacheSize: cacheSize,
		Rate:      1e9,
	})
	b.Cleanup(s.Close)
	return s
}

func searchOnce(b testing.TB, s *server.Server, body []byte) {
	b.Helper()
	r := httptest.NewRequest(http.MethodPost, "/v1/search", bytes.NewReader(body))
	w := httptest.NewRecorder()
	s.ServeHTTP(w, r)
	if w.Code != http.StatusOK {
		b.Fatalf("search = %d: %s", w.Code, w.Body.String())
	}
}

// BenchmarkServerSearch is the uncached query path: every iteration asks
// for a different example shot, so the hierarchical index runs each time.
func BenchmarkServerSearch(b *testing.B) {
	s := benchServer(b, -1) // cache disabled
	shots := len(benchLibrary(b).Video("laparoscopy").Result.Shots)
	bodies := make([][]byte, shots)
	for i := range bodies {
		bodies[i] = []byte(fmt.Sprintf(`{"video":"laparoscopy","shot":%d,"k":10}`, i))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		searchOnce(b, s, bodies[i%len(bodies)])
	}
}

// BenchmarkServerSearchCached repeats one query so every iteration after
// the first is served from the generation-keyed LRU cache.
func BenchmarkServerSearchCached(b *testing.B) {
	s := benchServer(b, 256)
	body := []byte(`{"video":"laparoscopy","shot":0,"k":10}`)
	searchOnce(b, s, body) // warm
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		searchOnce(b, s, body)
	}
}

// BenchmarkServerSearchBatch measures the batch endpoint with 16 uncached
// items per request (cache disabled): one HTTP round trip, parallel index
// fan-out underneath.
func BenchmarkServerSearchBatch(b *testing.B) {
	s := benchServer(b, -1)
	shots := len(benchLibrary(b).Video("laparoscopy").Result.Shots)
	const items = 16
	bodies := make([][]byte, shots)
	for start := range bodies {
		var buf bytes.Buffer
		buf.WriteString(`{"k":10,"items":[`)
		for j := 0; j < items; j++ {
			if j > 0 {
				buf.WriteByte(',')
			}
			fmt.Fprintf(&buf, `{"video":"laparoscopy","shot":%d}`, (start+j)%shots)
		}
		buf.WriteString("]}")
		bodies[start] = buf.Bytes()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := httptest.NewRequest(http.MethodPost, "/v1/search/batch", bytes.NewReader(bodies[i%len(bodies)]))
		w := httptest.NewRecorder()
		s.ServeHTTP(w, r)
		if w.Code != http.StatusOK {
			b.Fatalf("batch = %d: %s", w.Code, w.Body.String())
		}
	}
}
