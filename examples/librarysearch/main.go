// Librarysearch reproduces the §6.2 claim interactively: query-by-example
// over a multi-video library through the hierarchical multi-center index
// versus a flat scan of every shot, with the cost counters of Eqs. (24)
// and (25) printed side by side.
package main

import (
	"fmt"
	"log"
	"time"

	"classminer"
	"classminer/internal/index"
	"classminer/internal/synth"
)

func main() {
	analyzer, err := classminer.NewAnalyzer(classminer.Options{SkipEvents: true})
	if err != nil {
		log.Fatal(err)
	}
	library := classminer.NewLibrary(analyzer)

	var allEntries []*index.Entry
	for i, name := range synth.CorpusNames() {
		script := synth.CorpusScript(name, 0.4, 51)
		video, err := synth.Generate(synth.DefaultConfig(), script, int64(50+i))
		if err != nil {
			log.Fatal(err)
		}
		res, err := library.AddVideo(video, "medicine")
		if err != nil {
			log.Fatal(err)
		}
		allEntries = append(allEntries, res.IndexEntries("medicine")...)
	}
	if err := library.BuildIndex(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("library: %d videos, %d shots indexed\n\n", len(synth.CorpusNames()), library.Size())

	admin := classminer.User{Name: "admin", Clearance: classminer.Administrator}
	query := allEntries[len(allEntries)/3].Shot.Feature()

	t0 := time.Now()
	flatHits, flatStats := index.FlatSearch(allEntries, query, 5)
	flatDur := time.Since(t0)

	t0 = time.Now()
	hierHits, hierStats, err := library.Search(admin, query, 5)
	if err != nil {
		log.Fatal(err)
	}
	hierDur := time.Since(t0)

	fmt.Printf("flat scan (Eq. 24):     %6d dist ops, %9d float ops, ranked %4d, %v\n",
		flatStats.DistanceOps, flatStats.FloatOps, flatStats.Candidates, flatDur)
	fmt.Printf("hierarchical (Eq. 25):  %6d dist ops, %9d float ops, ranked %4d, %v\n",
		hierStats.DistanceOps, hierStats.FloatOps, hierStats.Candidates, hierDur)
	fmt.Printf("float-op reduction: %.1fx\n\n", float64(flatStats.FloatOps)/float64(hierStats.FloatOps))

	fmt.Println("top hits (flat | hierarchical):")
	for i := 0; i < 5 && i < len(flatHits) && i < len(hierHits); i++ {
		f, h := flatHits[i], hierHits[i]
		fmt.Printf("  %d. %s shot %-4d (d=%.4f)  |  %s shot %-4d (d=%.4f)\n",
			i+1, f.Entry.VideoName, f.Entry.Shot.Index, f.Dist,
			h.Entry.VideoName, h.Entry.Shot.Index, h.Dist)
	}
}
