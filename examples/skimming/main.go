// Skimming demonstrates the §5 scalable video skimming tool: the four
// granularity levels, the frame compression ratio of each, and the event
// colour bar used for direct scene access.
package main

import (
	"fmt"
	"log"

	"classminer"
	"classminer/internal/synth"
)

func main() {
	script := synth.CorpusScript("laser-eye-surgery", 0.4, 31)
	video, err := synth.Generate(synth.DefaultConfig(), script, 31)
	if err != nil {
		log.Fatal(err)
	}
	analyzer, err := classminer.NewAnalyzer(classminer.Options{})
	if err != nil {
		log.Fatal(err)
	}
	result, err := analyzer.Analyze(video)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("video: %s (%.0fs)\n\n", video.Name, video.Duration())
	sk := result.Skim
	for level := classminer.SkimLevel4; level >= classminer.SkimLevel1; level-- {
		shots := sk.Shots(level)
		var seconds float64
		for _, s := range shots {
			seconds += float64(s.Len()) / video.FPS
		}
		fmt.Printf("level %d: %3d shots, %6.1fs of playback, FCR %.3f\n",
			level, len(shots), seconds, sk.FCR(level))
	}

	fmt.Printf("\nevent bar (drag target of the fast-access toolbar):\n%s\n", sk.ColorBar(72))
	// Simulate the user dragging the scroll bar to the middle of the bar.
	if idx := sk.SceneAtBar(36, 72); idx >= 0 {
		sc := result.Scenes[idx]
		first, last := sc.FrameSpan()
		fmt.Printf("\nclicking mid-bar jumps to scene %d [%d,%d), event %s\n",
			idx, first, last, sc.Event)
	}
}
