// Compressed demonstrates the compressed-domain path of §3.1: the video is
// encoded with the simulated MPEG-I codec and shot boundaries are detected
// directly from DC images extracted without full decode, then compared with
// the pixel-domain detector and the ground truth.
package main

import (
	"fmt"
	"log"
	"time"

	"classminer/internal/mpeg"
	"classminer/internal/shotdet"
	"classminer/internal/synth"
)

func main() {
	script := synth.CorpusScript("face-repair", 0.4, 88)
	video, err := synth.Generate(synth.DefaultConfig(), script, 88)
	if err != nil {
		log.Fatal(err)
	}
	raw := len(video.Frames) * video.Frames[0].W * video.Frames[0].H * 3

	t0 := time.Now()
	stream, err := mpeg.Encode(video, mpeg.Options{GOP: 12, Quality: 80})
	if err != nil {
		log.Fatal(err)
	}
	encDur := time.Since(t0)
	fmt.Printf("encoded %d frames: %d B (%.1fx vs %d B raw) in %v\n",
		len(video.Frames), len(stream), float64(raw)/float64(len(stream)), raw, encDur)

	// Compressed-domain path: DC images only, no inverse DCT.
	t0 = time.Now()
	dcs, err := mpeg.ExtractDC(stream)
	if err != nil {
		log.Fatal(err)
	}
	dcCuts, err := shotdet.DetectDC(dcs, shotdet.Config{})
	if err != nil {
		log.Fatal(err)
	}
	dcDur := time.Since(t0)

	// Pixel-domain path: full decode + histogram detector.
	t0 = time.Now()
	decoded, err := mpeg.Decode(stream)
	if err != nil {
		log.Fatal(err)
	}
	shots, _, err := shotdet.Detect(decoded, shotdet.Config{})
	if err != nil {
		log.Fatal(err)
	}
	pixDur := time.Since(t0)

	trueCuts := video.Truth.ShotStarts[1:]
	match := func(cuts []int) int {
		n := 0
		for _, c := range cuts {
			for _, tc := range trueCuts {
				if c-tc <= 1 && tc-c <= 1 {
					n++
					break
				}
			}
		}
		return n
	}
	var pixCuts []int
	for _, s := range shots[1:] {
		pixCuts = append(pixCuts, s.Start)
	}

	fmt.Printf("\ntrue cuts: %d\n", len(trueCuts))
	fmt.Printf("DC domain    : %3d cuts, %3d matched, %8v (no full decode)\n",
		len(dcCuts), match(dcCuts), dcDur)
	fmt.Printf("pixel domain : %3d cuts, %3d matched, %8v (decode + histograms)\n",
		len(pixCuts), match(pixCuts), pixDur)
	fmt.Printf("\nspeedup of the compressed-domain path: %.1fx\n",
		float64(pixDur)/float64(dcDur))
}
