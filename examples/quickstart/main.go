// Quickstart: generate a small synthetic medical video, mine its content
// structure and events with ClassMiner, and print what was found.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"classminer"
	"classminer/internal/synth"
)

func main() {
	// 1. A video. Real deployments decode MPEG; this repository ships a
	// synthetic generator so everything runs offline (see internal/synth).
	rng := rand.New(rand.NewSource(7))
	script := &synth.Script{Name: "quickstart", Scenes: []synth.SceneSpec{
		synth.PresentationScene(rng, 0, 1, 1),                     // presenter + slides
		synth.DialogScene(rng, 1, 2, 2, 3),                        // doctor–patient dialog
		synth.OperationScene(rng, 2, 3, synth.ContentSurgical, 0), // surgery
	}}
	video, err := synth.Generate(synth.DefaultConfig(), script, 7)
	if err != nil {
		log.Fatal(err)
	}

	// 2. One analyzer, reusable across videos.
	analyzer, err := classminer.NewAnalyzer(classminer.Options{})
	if err != nil {
		log.Fatal(err)
	}

	// 3. Mine the video.
	result, err := analyzer.Analyze(video)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println(result.Summary())
	fmt.Println()
	for _, scene := range result.Scenes {
		first, last := scene.FrameSpan()
		fmt.Printf("scene %d (%.1fs–%.1fs): %d shots, event = %s\n",
			scene.Index, float64(first)/video.FPS, float64(last)/video.FPS,
			scene.ShotCount(), scene.Event)
	}
	fmt.Printf("\nskimming overview:\n%s", result.Skim.Describe())
	fmt.Printf("event bar: %s\n", result.Skim.ColorBar(60))
}
