// Eventquery answers the paper's motivating query — "show me all
// patient–doctor dialogs within the video library" — by mining a small
// library and listing every scene per event category.
package main

import (
	"fmt"
	"log"

	"classminer"
	"classminer/internal/synth"
)

func main() {
	analyzer, err := classminer.NewAnalyzer(classminer.Options{})
	if err != nil {
		log.Fatal(err)
	}
	library := classminer.NewLibrary(analyzer)

	for i, name := range []string{"skin-examination", "face-repair"} {
		script := synth.CorpusScript(name, 0.3, 11)
		video, err := synth.Generate(synth.DefaultConfig(), script, int64(20+i))
		if err != nil {
			log.Fatal(err)
		}
		if _, err := library.AddVideo(video, "medicine"); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("indexed %q: %s\n", name, library.Video(name).Result.Summary())
	}
	if err := library.BuildIndex(); err != nil {
		log.Fatal(err)
	}

	doctor := classminer.User{Name: "dr-lee", Clearance: classminer.Clinician}
	for _, kind := range []classminer.EventKind{
		classminer.EventDialog,
		classminer.EventPresentation,
		classminer.EventClinicalOperation,
	} {
		refs := library.ScenesByEvent(doctor, kind)
		fmt.Printf("\n%q scenes visible to %s: %d\n", kind, doctor.Name, len(refs))
		for _, r := range refs {
			first, last := r.Scene.FrameSpan()
			fmt.Printf("  %s  scene %d  frames [%d,%d)  %d shots\n",
				r.VideoName, r.Scene.Index, first, last, r.Scene.ShotCount())
		}
	}
}
