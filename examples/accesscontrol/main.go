// Accesscontrol demonstrates the §2 hierarchical access-control model: the
// same library answers the same query differently per user — clinical
// material is hidden from low-clearance subjects while the deepest rule
// carves exceptions.
package main

import (
	"fmt"
	"log"

	"classminer"
	"classminer/internal/synth"
)

func main() {
	analyzer, err := classminer.NewAnalyzer(classminer.Options{})
	if err != nil {
		log.Fatal(err)
	}
	library := classminer.NewLibrary(analyzer)
	script := synth.CorpusScript("laparoscopy", 0.3, 41)
	video, err := synth.Generate(synth.DefaultConfig(), script, 41)
	if err != nil {
		log.Fatal(err)
	}
	if _, err := library.AddVideo(video, "medicine"); err != nil {
		log.Fatal(err)
	}
	if err := library.BuildIndex(); err != nil {
		log.Fatal(err)
	}

	// Protection rules over the concept hierarchy: all of medical
	// education needs a student account; clinical operations need a
	// clinician; dialogs are deliberately opened back up (deepest wins).
	library.Protect(classminer.Rule{Concept: "medical education", MinClearance: classminer.Student})
	library.Protect(classminer.Rule{Concept: "medicine/clinical operation", MinClearance: classminer.Clinician})
	library.Protect(classminer.Rule{Concept: "medicine/dialog", MinClearance: classminer.Public})

	users := []classminer.User{
		{Name: "visitor", Clearance: classminer.Public},
		{Name: "med-student", Clearance: classminer.Student},
		{Name: "dr-garcia", Clearance: classminer.Clinician},
	}
	result := library.Video("laparoscopy").Result
	query := result.Shots[len(result.Shots)/2].Feature()
	for _, u := range users {
		hits, stats, err := library.Search(u, query, 10)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-12s (%v): %2d hits after filtering (index compared %d candidates)\n",
			u.Name, u.Clearance, len(hits), stats.Candidates)
		for _, kind := range []classminer.EventKind{classminer.EventClinicalOperation, classminer.EventDialog} {
			refs := library.ScenesByEvent(u, kind)
			fmt.Printf("              %-20v -> %d scenes visible\n", kind, len(refs))
		}
	}
}
