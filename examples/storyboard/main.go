// Storyboard demonstrates the §5 follow-on applications: pictorial
// summarization (a PNG storyboard of scene thumbnails) and hierarchical
// video browsing (the Fig. 1 tree made navigable). The storyboard PNG and
// a WAV excerpt of the audio are written to the working directory.
package main

import (
	"fmt"
	"log"
	"os"

	"classminer"
	"classminer/internal/mediaio"
	"classminer/internal/summary"
	"classminer/internal/synth"
	"classminer/internal/vidmodel"
)

func main() {
	script := synth.CorpusScript("nuclear-medicine", 0.35, 77)
	video, err := synth.Generate(synth.DefaultConfig(), script, 77)
	if err != nil {
		log.Fatal(err)
	}
	analyzer, err := classminer.NewAnalyzer(classminer.Options{})
	if err != nil {
		log.Fatal(err)
	}
	result, err := analyzer.Analyze(video)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(result.Summary())

	// Pictorial summary: one thumbnail per scene.
	sb, err := summary.BuildStoryboard(result, 4)
	if err != nil {
		log.Fatal(err)
	}
	out, err := os.Create("storyboard.png")
	if err != nil {
		log.Fatal(err)
	}
	defer out.Close()
	if err := mediaio.WritePNG(out, sb.Mosaic); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nwrote storyboard.png (%dx%d, %d tiles)\n", sb.Mosaic.W, sb.Mosaic.H, len(sb.Tiles))
	for _, tile := range sb.Tiles {
		fmt.Printf("  tile scene %2d shot %3d  %-18v at (%d,%d)\n",
			tile.SceneIndex, tile.ShotIndex, tile.Event, tile.X, tile.Y)
	}

	// A 5-second WAV excerpt of the soundtrack.
	excerpt := &vidmodel.AudioTrack{
		SampleRate: video.Audio.SampleRate,
		Samples:    video.Audio.Samples[:min(5*video.Audio.SampleRate, len(video.Audio.Samples))],
	}
	wav, err := os.Create("excerpt.wav")
	if err != nil {
		log.Fatal(err)
	}
	defer wav.Close()
	if err := mediaio.WriteWAV(wav, excerpt); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote excerpt.wav (%d samples @ %d Hz)\n\n", len(excerpt.Samples), excerpt.SampleRate)

	// Hierarchical browser.
	tree, err := summary.BuildBrowseTree(result)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("browse tree:")
	fmt.Print(tree.Render())
}
