package classminer_test

// The serving hot path carries an exact allocation budget, pinned here as a
// test (not just a benchmark someone has to remember to run). The contract:
// with the full default stack active — auth, admission, metrics, AND request
// tracing — an uncached search that the tracer records but does not keep
// (unsampled, fast, 2xx) costs exactly 43 heap allocations per request,
// including the httptest request/recorder scaffolding the companion
// BenchmarkServerSearch also counts. Tracing rides the budget by pooling its
// per-request state and deferring every rendering cost to kept traces.

import (
	"testing"
)

func TestServerSearchAllocContract(t *testing.T) {
	if raceDetectorOn {
		t.Skip("alloc counts differ under the race detector")
	}
	const want = 43.0
	s := benchServer(t, -1) // cache disabled: every request runs the index
	body := []byte(`{"video":"laparoscopy","shot":0,"k":10}`)
	for i := 0; i < 16; i++ {
		searchOnce(t, s, body) // warm every pool on the path
	}
	got := testing.AllocsPerRun(200, func() { searchOnce(t, s, body) })
	// A stray GC emptying a sync.Pool mid-run can add a fractional alloc;
	// anything reaching the next whole allocation is a real regression.
	if got < want || got >= want+1 {
		t.Fatalf("uncached search = %.2f allocs/op, want %v\n"+
			"(if a change legitimately shifted the budget, update this contract "+
			"and BenchmarkServerSearch's docs together)", got, want)
	}
}
