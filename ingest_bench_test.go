package classminer

import (
	"fmt"
	"sync/atomic"
	"testing"
)

// durableBenchLibrary opens a fresh fsync=always durable library for ingest
// benchmarks. Auto-checkpointing is disabled so every iteration measures the
// append path, not a background snapshot.
func durableBenchLibrary(b *testing.B) *Library {
	b.Helper()
	a, err := NewAnalyzer(Options{SkipEvents: true})
	if err != nil {
		b.Fatal(err)
	}
	opts := quietWAL()
	opts.Sync = SyncAlways
	opts.SegmentBytes = 64 << 20
	lib, err := Recover(b.TempDir(), a, opts)
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { lib.Close() })
	return lib
}

// benchResults pre-mines b.N tiny results outside the timed loop so the
// benchmark measures the durable registration path (encode, journal, group
// commit, install), not test-fixture decoding.
func benchResults(b *testing.B, prefix string) []*Result {
	b.Helper()
	out := make([]*Result, b.N)
	for i := range out {
		out[i] = tinyResult(b, fmt.Sprintf("%s-%08d", prefix, i), int64(i), 2)
	}
	return out
}

// BenchmarkDurableIngestSerial is the per-record fsync baseline: one writer,
// so every registration pays a full fsync before it is acknowledged. This is
// what the whole ingest pool used to pay per record regardless of
// concurrency, because the append-and-fsync ran inside the library's write
// lock.
func BenchmarkDurableIngestSerial(b *testing.B) {
	lib := durableBenchLibrary(b)
	results := benchResults(b, "serial")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := lib.AddResult(results[i], "medicine"); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDurableIngestParallel measures sustained durable ingest
// throughput with 8 concurrent writers under fsync=always — the ISSUE 5
// target workload. With WAL group commit the writers coalesce onto shared
// fsyncs, so records/sec scale with the batching ratio instead of paying
// one disk flush each.
func BenchmarkDurableIngestParallel(b *testing.B) {
	lib := durableBenchLibrary(b)
	results := benchResults(b, "par")
	const writers = 8
	var next atomic.Int64
	b.ResetTimer()
	done := make(chan error, writers)
	for w := 0; w < writers; w++ {
		go func() {
			var err error
			for {
				i := int(next.Add(1)) - 1
				if i >= b.N {
					break
				}
				if err = lib.AddResult(results[i], "medicine"); err != nil {
					break
				}
			}
			done <- err
		}()
	}
	for w := 0; w < writers; w++ {
		if err := <-done; err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	if ws, ok := lib.WALStats(); ok && ws.Syncs > 0 {
		b.ReportMetric(float64(ws.Records)/float64(ws.Syncs), "records/fsync")
	}
}
