module classminer

go 1.21
