// Command experiments regenerates every table and figure of the paper's
// evaluation section on the synthetic corpus, printing the same rows and
// series the paper reports.
//
// Usage:
//
//	experiments [-exp all|fig5|fig8|fig12|fig13|table1|sec62|fig14|fig15] [-scale 1.0] [-seed 2003]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"classminer/internal/core"
	"classminer/internal/eval"
	"classminer/internal/synth"
)

func main() {
	exp := flag.String("exp", "all", "experiment id: all, fig5, fig8, fig12, fig13, table1, sec62, fig14, fig15")
	scale := flag.Float64("scale", 1.0, "corpus scale (1.0 = paper-shaped corpus)")
	seed := flag.Int64("seed", 2003, "corpus seed")
	flag.Parse()

	cfg := eval.CorpusConfig{Scale: *scale, Seed: *seed}
	runners := map[string]func(eval.CorpusConfig) error{
		"fig5":   runFig5,
		"fig8":   runFig8,
		"fig12":  runFig12And13,
		"fig13":  runFig12And13,
		"table1": runTable1,
		"sec62":  runSec62,
		"fig14":  runFig14And15,
		"fig15":  runFig14And15,
	}
	order := []string{"fig5", "fig8", "fig12", "table1", "sec62", "fig14"}

	var ids []string
	if *exp == "all" {
		ids = order
	} else {
		for _, id := range strings.Split(*exp, ",") {
			id = strings.TrimSpace(id)
			if _, ok := runners[id]; !ok {
				fmt.Fprintf(os.Stderr, "unknown experiment %q\n", id)
				os.Exit(2)
			}
			ids = append(ids, id)
		}
	}
	for _, id := range ids {
		if err := runners[id](cfg); err != nil {
			fmt.Fprintf(os.Stderr, "experiment %s failed: %v\n", id, err)
			os.Exit(1)
		}
	}
}

func runFig5(cfg eval.CorpusConfig) error {
	rep, err := eval.RunShotDetection(cfg, "")
	if err != nil {
		return err
	}
	fmt.Printf("== Fig. 5: shot detection with locally adaptive thresholds (%s) ==\n", rep.Video)
	fmt.Printf("true cuts %d, detected %d, matched %d  (recall %.2f, precision %.2f)\n",
		rep.TrueCuts, rep.Detected, rep.Matched, rep.Recall, rep.Precision)
	// A coarse ASCII rendition of the frame-difference series with the
	// adaptive threshold, around the first detected cut.
	if len(rep.Trace.Cuts) > 0 {
		c := rep.Trace.Cuts[0]
		lo, hi := c-8, c+8
		if lo < 0 {
			lo = 0
		}
		if hi > len(rep.Trace.Diffs) {
			hi = len(rep.Trace.Diffs)
		}
		fmt.Println("frame   diff    threshold")
		for t := lo; t < hi; t++ {
			mark := ""
			if containsInt(rep.Trace.Cuts, t+1) {
				mark = "  <- cut"
			}
			fmt.Printf("%5d  %.4f   %.4f%s\n", t, rep.Trace.Diffs[t], rep.Trace.Thresholds[t], mark)
		}
	}
	fmt.Println()
	return nil
}

func containsInt(xs []int, v int) bool {
	for _, x := range xs {
		if x == v {
			return true
		}
	}
	return false
}

func runFig8(cfg eval.CorpusConfig) error {
	fmt.Println("== Fig. 8: qualitative scene detection by type ==")
	analyzer, err := core.NewAnalyzer(core.Options{SkipEvents: true})
	if err != nil {
		return err
	}
	script := synth.CorpusScript(synth.CorpusNames()[0], cfgScale(cfg), cfgSeed(cfg))
	v, err := synth.Generate(synth.DefaultConfig(), script, cfgSeed(cfg))
	if err != nil {
		return err
	}
	res, err := analyzer.Analyze(v)
	if err != nil {
		return err
	}
	fmt.Printf("%s: %d true scenes, %d detected scenes\n", v.Name, len(v.Truth.Scenes), len(res.Scenes))
	for _, sc := range res.Scenes {
		first, last := sc.FrameSpan()
		kind := "(straddles boundary)"
		if ti := v.Truth.SceneAt(first); ti >= 0 && ti == v.Truth.SceneAt(last-1) {
			kind = v.Truth.Scenes[ti].Event.String()
		}
		fmt.Printf("  scene %2d: frames [%5d,%5d) %2d shots  true type: %s\n",
			sc.Index, first, last, sc.ShotCount(), kind)
	}
	fmt.Println()
	return nil
}

func runFig12And13(cfg eval.CorpusConfig) error {
	rows, err := eval.RunSceneDetection(cfg)
	if err != nil {
		return err
	}
	fmt.Println("== Fig. 12: scene detection precision (Eq. 20) ==")
	fmt.Println("method            precision   (paper: A 0.65 > B ~0.61 > C ~0.575)")
	for _, r := range rows {
		fmt.Printf("%-16s  %.3f  (%d/%d scenes pure)\n", r.Method, r.Precision, r.Right, r.Total)
	}
	fmt.Println()
	fmt.Println("== Fig. 13: compression rate factor CRF (Eq. 21) ==")
	fmt.Println("method            CRF      (paper: A 0.086 highest; C lowest)")
	for _, r := range rows {
		fmt.Printf("%-16s  %.3f  (%d scenes / %d shots)\n", r.Method, r.CRF, r.Total, r.Shots)
	}
	fmt.Println()
	return nil
}

func runTable1(cfg eval.CorpusConfig) error {
	rows, err := eval.RunEventMining(cfg)
	if err != nil {
		return err
	}
	fmt.Println("== Table 1: video event mining ==")
	fmt.Println("event               SN   DN   TN    PR    RE   (paper avg: 0.72 / 0.71)")
	for _, r := range rows {
		fmt.Printf("%-18s %4d %4d %4d  %.2f  %.2f\n", r.Event, r.SN, r.DN, r.TN, r.PR, r.RE)
	}
	fmt.Println()
	return nil
}

func runSec62(cfg eval.CorpusConfig) error {
	// Sweep database sizes to expose the scaling of Eq. (24) vs Eq. (25);
	// sizes beyond the corpus clamp to it.
	rows, err := eval.RunIndexCost(cfg, []int{64, 128, 256, 1 << 20}, 30)
	if err != nil {
		return err
	}
	fmt.Println("== §6.2: cluster-based indexing vs flat scan (Eqs. 24–25) ==")
	fmt.Println("N       flat float-ops  hier float-ops  ratio   flat µs  hier µs  ranked(flat/hier)  top-agree")
	for _, r := range rows {
		ratio := float64(r.FlatFloatOps) / float64(max(r.HierFloatOps, 1))
		fmt.Printf("%-6d  %14d  %14d  %5.1fx  %7d  %7d  %7d/%-7d  %.2f\n",
			r.N, r.FlatFloatOps, r.HierFloatOps, ratio,
			r.FlatNanos/1000, r.HierNanos/1000, r.FlatRanked, r.HierRanked, r.TopAgree)
	}
	fmt.Println()
	return nil
}

func runFig14And15(cfg eval.CorpusConfig) error {
	scores, fcrs, err := eval.RunSkimStudy(cfg)
	if err != nil {
		return err
	}
	fmt.Println("== Fig. 14: scalable skimming viewer scores (simulated panel) ==")
	fmt.Println("level   Q1-topic  Q2-scenario  Q3-concise   (paper: level 3 is the knee)")
	for _, s := range scores {
		fmt.Printf("%5d   %8.2f  %11.2f  %10.2f\n", s.Level, s.Q1, s.Q2, s.Q3)
	}
	fmt.Println()
	fmt.Println("== Fig. 15: frame compression ratio per skim level ==")
	fmt.Println("level   FCR     (paper: level 4 ~= 0.10)")
	for _, f := range fcrs {
		fmt.Printf("%5d   %.3f\n", f.Level, f.FCR)
	}
	fmt.Println()
	return nil
}

func cfgScale(c eval.CorpusConfig) float64 {
	if c.Scale <= 0 {
		return 1
	}
	return c.Scale
}

func cfgSeed(c eval.CorpusConfig) int64 {
	if c.Seed == 0 {
		return 2003
	}
	return c.Seed
}
