// Command classminer runs the full ClassMiner pipeline on one synthetic
// corpus video and prints its mined content structure, events and scalable
// skimming — the CLI counterpart of the Fig. 11 prototype.
//
// Usage:
//
//	classminer [-video laparoscopy] [-scale 0.5] [-seed 2003] [-level 3] [-mpeg]
package main

import (
	"flag"
	"fmt"
	"os"

	"classminer/internal/core"
	"classminer/internal/mpeg"
	"classminer/internal/skim"
	"classminer/internal/store"
	"classminer/internal/synth"
)

func main() {
	videoName := flag.String("video", "laparoscopy", "corpus video: "+fmt.Sprint(synth.CorpusNames()))
	scale := flag.Float64("scale", 0.5, "corpus scale")
	seed := flag.Int64("seed", 2003, "corpus seed")
	level := flag.Int("level", 3, "skimming level to list (1-4)")
	useMPEG := flag.Bool("mpeg", false, "round-trip the video through the simulated MPEG codec first")
	saveTo := flag.String("save", "", "write the mined metadata (JSON) to this file")
	flag.Parse()

	if err := run(*videoName, *scale, *seed, *level, *useMPEG, *saveTo); err != nil {
		fmt.Fprintln(os.Stderr, "classminer:", err)
		os.Exit(1)
	}
}

func run(videoName string, scale float64, seed int64, level int, useMPEG bool, saveTo string) error {
	script := synth.CorpusScript(videoName, scale, seed)
	if script == nil {
		return fmt.Errorf("unknown corpus video %q (have %v)", videoName, synth.CorpusNames())
	}
	v, err := synth.Generate(synth.DefaultConfig(), script, seed)
	if err != nil {
		return err
	}
	if useMPEG {
		data, err := mpeg.Encode(v, mpeg.Options{})
		if err != nil {
			return err
		}
		raw := len(v.Frames) * v.Frames[0].W * v.Frames[0].H * 3
		fmt.Printf("MPEG round-trip: %d frames, %d B compressed (%.1fx vs raw)\n",
			len(v.Frames), len(data), float64(raw)/float64(len(data)))
		dec, err := mpeg.Decode(data)
		if err != nil {
			return err
		}
		dec.Name, dec.Audio, dec.Truth = v.Name, v.Audio, v.Truth
		v = dec
	}

	analyzer, err := core.NewAnalyzer(core.Options{})
	if err != nil {
		return err
	}
	res, err := analyzer.Analyze(v)
	if err != nil {
		return err
	}

	fmt.Println(res.Summary())
	fmt.Println()
	fmt.Println("scenes:")
	for _, sc := range res.Scenes {
		first, last := sc.FrameSpan()
		fmt.Printf("  scene %2d [%5.1fs – %5.1fs] %2d shots in %d groups  event: %s\n",
			sc.Index, float64(first)/v.FPS, float64(last)/v.FPS,
			sc.ShotCount(), len(sc.Groups), sc.Event)
	}
	fmt.Println()
	fmt.Println("scalable skimming:")
	fmt.Print(res.Skim.Describe())
	fmt.Println()
	fmt.Printf("event bar (P=presentation D=dialog C=clinical .=unknown -=discarded):\n%s\n\n",
		res.Skim.ColorBar(72))

	l := skim.Level(level)
	shots := res.Skim.Shots(l)
	fmt.Printf("skim level %d playback (%d shots):\n", level, len(shots))
	for _, s := range shots {
		fmt.Printf("  shot %3d  frames [%5d,%5d)  event %s\n",
			s.Index, s.Start, s.End, res.EventOf(s.Start))
	}

	if saveTo != "" {
		saved, err := store.EncodeResult(res)
		if err != nil {
			return err
		}
		f, err := os.Create(saveTo)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := store.WriteLibrary(f, []store.SavedLibraryEntry{{Subcluster: "medicine", Result: saved}}); err != nil {
			return err
		}
		fmt.Printf("\nsaved mined metadata to %s\n", saveTo)
	}
	return nil
}
