// Command classminerd serves a mined video library over HTTP — the online
// counterpart of the paper's §6 database: hierarchical k-NN search, mined-
// event scene queries, content-structure browsing and scalable-skimming
// metadata, all behind multilevel access control.
//
// The library is populated from a durable data directory (-data-dir, with
// write-ahead logging and crash recovery), from a snapshot (-load), by
// mining synthetic corpus videos at startup (-bootstrap), or later through
// POST /v1/videos. With -data-dir every registration is journaled before
// it becomes visible, so a crash — OOM kill, power loss — loses no
// completed registration (an ingest job is durable once it reports done;
// a 202-accepted job that never ran can simply be resubmitted): the next
// boot replays the newest checkpoint snapshot plus the log tail. Without
// it, the daemon falls back to the legacy single-snapshot mode: on
// SIGINT/SIGTERM it shuts down gracefully and, when -save is set,
// checkpoints the library atomically.
//
// Usage:
//
//	classminerd -addr :8471 -data-dir ./data -bootstrap laparoscopy \
//	    -scale 0.4 -token s3cret=dr.lee:clinician:surgeon -anon public
//
// Then:
//
//	curl localhost:8471/healthz
//	curl localhost:8471/v1/videos
//	curl localhost:8471/v1/videos/laparoscopy
//	curl -X POST localhost:8471/v1/search \
//	    -d '{"video":"laparoscopy","shot":0,"k":5}'
//	curl localhost:8471/v1/events/dialog
//	curl -H 'Authorization: Bearer s3cret' -X POST localhost:8471/v1/videos \
//	    -d '{"corpus":"skin-examination","subcluster":"medicine","scale":0.4}'
//	curl -H 'Authorization: Bearer s3cret' -X POST localhost:8471/v1/videos \
//	    -d '{"corpus":"skin-examination","subcluster":"medicine","replace":true}'
//	curl -H 'Authorization: Bearer s3cret' -X DELETE localhost:8471/v1/videos/laparoscopy
//	curl -H 'Authorization: Bearer admin' -X POST localhost:8471/v1/admin/checkpoint
//	curl -H 'Authorization: Bearer admin' -X POST localhost:8471/v1/admin/compact
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"classminer"
	"classminer/internal/access"
	"classminer/internal/metrics"
	"classminer/internal/repl"
	"classminer/internal/server"
	"classminer/internal/shard"
	"classminer/internal/store"
	"classminer/internal/synth"
	"classminer/internal/wal"
)

// library is everything the daemon needs from its storage backend: the
// serving contract plus boot-time population and shutdown. Both a plain
// *classminer.Library (-shards 1, the default — including every legacy
// data dir) and the sharded router (*shard.Library, -shards N) satisfy it.
type library interface {
	server.Library
	AddVideo(v *classminer.Video, subcluster string) (*classminer.Result, error)
	ImportSnapshot(r io.Reader, skipExisting bool) (int, error)
	BuildIndex() error
	Close() error
}

// tokenFlags accumulates repeated -token values of the form
// token=name:clearance[:role1|role2...].
type tokenFlags struct {
	users map[string]access.User
}

func (t *tokenFlags) String() string { return fmt.Sprintf("%d tokens", len(t.users)) }

func (t *tokenFlags) Set(v string) error {
	tok, spec, ok := strings.Cut(v, "=")
	if !ok || tok == "" {
		return fmt.Errorf("want token=name:clearance[:roles], got %q", v)
	}
	parts := strings.Split(spec, ":")
	if len(parts) < 2 || len(parts) > 3 {
		return fmt.Errorf("want token=name:clearance[:roles], got %q", v)
	}
	clearance, err := access.ParseClearance(parts[1])
	if err != nil {
		return err
	}
	u := access.User{Name: parts[0], Clearance: clearance}
	if len(parts) == 3 && parts[2] != "" {
		u.Roles = strings.Split(parts[2], "|")
	}
	if t.users == nil {
		t.users = map[string]access.User{}
	}
	t.users[tok] = u
	return nil
}

// config collects every flag; run reads nothing else.
type config struct {
	addr       string
	dataDir    string
	load       string
	save       string
	bootstrap  string
	scale      float64
	seed       int64
	subcluster string
	anon       string
	workers    int
	queue      int
	cacheSize  int
	skipEvents bool
	metrics    bool
	pprof      bool
	tokens     map[string]access.User

	// sharding (only meaningful with -data-dir or for in-memory scale-out)
	shards    int
	shardsSet bool // -shards given explicitly (mismatch checks need to know)

	// replication
	role          string
	leaderURL     string
	replToken     string
	followerID    string
	replLagReady  int64
	replPinBudget int64
	walPressure   int64
	replLagBytes  int64

	// write-path index maintenance
	rebuildAfter    float64
	rebuildDebounce time.Duration

	// admission control / self-protection
	rate        float64
	burst       float64
	maxInflight int
	reqTimeout  time.Duration
	memBudget   int64

	// request tracing
	traceSample float64
	traceSlow   time.Duration
	traceRing   int

	// durable-mode tuning (only read when dataDir is set)
	fsync        string
	fsyncEvery   time.Duration
	segBytes     int64
	ckptBytes    int64
	ckptRecords  int64
	compactBytes int64
}

func main() {
	var tokens tokenFlags
	var cfg config
	flag.StringVar(&cfg.addr, "addr", ":8471", "listen address")
	flag.StringVar(&cfg.dataDir, "data-dir", "", "durable data directory (write-ahead log + checkpoints; crash recovery on boot)")
	flag.StringVar(&cfg.load, "load", "", "import a library snapshot (JSON written by -save or classminer -save)")
	flag.StringVar(&cfg.save, "save", "", "snapshot path written on shutdown and by POST /v1/admin/save")
	flag.StringVar(&cfg.bootstrap, "bootstrap", "", "comma-separated corpus videos to mine at startup, or \"all\"")
	flag.Float64Var(&cfg.scale, "scale", 0.4, "bootstrap corpus scale")
	flag.Int64Var(&cfg.seed, "seed", 2003, "bootstrap corpus seed")
	flag.StringVar(&cfg.subcluster, "subcluster", "medicine", "concept subcluster for bootstrapped videos")
	flag.StringVar(&cfg.anon, "anon", "public", "clearance for unauthenticated requests (\"none\" to require a token)")
	flag.IntVar(&cfg.workers, "workers", 2, "ingest worker pool size")
	flag.IntVar(&cfg.queue, "queue", 8, "ingest queue depth")
	flag.IntVar(&cfg.cacheSize, "cache", 256, "search cache entries (negative disables)")
	flag.BoolVar(&cfg.skipEvents, "skip-events", false, "mine structure only (faster startup, no event queries on bootstrapped videos)")
	flag.BoolVar(&cfg.metrics, "metrics", true, "serve Prometheus metrics on GET /metrics (token-gated like the API)")
	flag.BoolVar(&cfg.pprof, "pprof", false, "serve net/http/pprof under /debug/pprof/ to Administrator-clearance callers")
	flag.Float64Var(&cfg.rebuildAfter, "rebuild-after", 0.25, "index staleness fraction (inserted+removed since the last full fit) that triggers a background rebuild")
	flag.DurationVar(&cfg.rebuildDebounce, "rebuild-debounce", 250*time.Millisecond, "how long the rebuilder waits for further mutations to coalesce into one rebuild")
	flag.Float64Var(&cfg.rate, "rate", 0, "per-token request rate limit in req/s, scaled by clearance tier (0 disables)")
	flag.Float64Var(&cfg.burst, "burst", 0, "per-token rate-limit burst (default 2x -rate)")
	flag.IntVar(&cfg.maxInflight, "max-inflight", 256, "concurrent search requests admitted; mutations and admin get narrower slices (negative disables)")
	flag.DurationVar(&cfg.reqTimeout, "req-timeout", 10*time.Second, "per-request deadline for search and mutation handlers; admin gets 4x (negative disables)")
	flag.Int64Var(&cfg.memBudget, "mem-budget", 0, "heap budget in bytes; over it the server degrades in stages — shed cache, pause rebuilds, reject ingest (0 disables)")
	flag.Float64Var(&cfg.traceSample, "trace-sample", 0, "fraction of requests traced end to end regardless of outcome (slow and 5xx requests are always kept)")
	flag.DurationVar(&cfg.traceSlow, "trace-slow", 500*time.Millisecond, "keep the trace of any request at least this slow (0 keeps every trace)")
	flag.IntVar(&cfg.traceRing, "trace-ring", 256, "recent traces retained for GET /debug/traces")
	flag.StringVar(&cfg.fsync, "fsync", "always", "WAL fsync policy: always, interval or off")
	flag.DurationVar(&cfg.fsyncEvery, "fsync-interval", 100*time.Millisecond, "background fsync period under -fsync=interval")
	flag.Int64Var(&cfg.segBytes, "segment-bytes", 4<<20, "WAL segment rotation size")
	flag.Int64Var(&cfg.ckptBytes, "checkpoint-bytes", 64<<20, "auto-checkpoint once this much WAL accumulates (negative disables)")
	flag.Int64Var(&cfg.ckptRecords, "checkpoint-records", 10000, "auto-checkpoint once this many WAL records accumulate (negative disables)")
	flag.Int64Var(&cfg.compactBytes, "compact-bytes", 8<<20, "auto-compact sealed WAL segments once this many dead bytes accumulate (negative disables)")
	flag.IntVar(&cfg.shards, "shards", 1, "library shards, each with its own WAL/index/rebuild state (fixed at data-dir creation; 1 = classic single library)")
	flag.StringVar(&cfg.role, "role", "leader", "replication role: leader (serves /v1/repl/* when durable) or follower (replicates from -leader-url, read-only until promoted)")
	flag.StringVar(&cfg.leaderURL, "leader-url", "", "leader base URL a follower replicates from (required with -role follower)")
	flag.StringVar(&cfg.replToken, "repl-token", "", "bearer token the follower presents to the leader (needs administrator clearance there)")
	flag.StringVar(&cfg.followerID, "follower-id", "follower", "this follower's id in the leader's pin table; keep it stable across restarts")
	flag.Int64Var(&cfg.replLagReady, "repl-lag-ready", 0, "record lag at or under which a follower's /readyz reports ready")
	flag.Int64Var(&cfg.replPinBudget, "repl-pin-budget-bytes", 0, "max unshipped WAL bytes a follower's pin may hold against compaction before eviction (0 = 512 MiB default, negative disables)")
	flag.Int64Var(&cfg.walPressure, "wal-pressure-bytes", 0, "shed ingest with 503 once un-checkpointed or dead WAL bytes exceed this (0 disables)")
	flag.Int64Var(&cfg.replLagBytes, "repl-lag-bytes", 0, "shed ingest with 503 once the worst follower's replication lag exceeds this many bytes (0 disables)")
	flag.Var(&tokens, "token", "token=name:clearance[:role1|role2] (repeatable)")
	flag.Parse()
	cfg.tokens = tokens.users
	flag.Visit(func(f *flag.Flag) {
		if f.Name == "shards" {
			cfg.shardsSet = true
		}
	})

	if err := run(cfg); err != nil {
		fmt.Fprintln(os.Stderr, "classminerd:", err)
		os.Exit(1)
	}
}

// syncPolicy maps the -fsync flag to a WAL policy.
func syncPolicy(name string) (s classminer.DurableOptions, err error) {
	switch name {
	case "always", "":
		s.Sync = classminer.SyncAlways
	case "interval":
		s.Sync = classminer.SyncInterval
	case "off", "never":
		s.Sync = classminer.SyncNever
	default:
		err = fmt.Errorf("unknown -fsync policy %q (want always, interval or off)", name)
	}
	return s, err
}

func run(cfg config) error {
	logger := log.New(os.Stderr, "classminerd: ", log.LstdFlags)

	logger.Printf("training analyzer (skipEvents=%v)...", cfg.skipEvents)
	analyzer, err := classminer.NewAnalyzer(classminer.Options{SkipEvents: cfg.skipEvents})
	if err != nil {
		return err
	}

	// One registry spans the process: the WAL engine registers its series at
	// Recover, the server adds the HTTP/cache/library ones at New, and
	// GET /metrics exposes them all.
	var reg *metrics.Registry
	if cfg.metrics {
		reg = metrics.NewRegistry()
	}

	if cfg.role != "leader" && cfg.role != "follower" {
		return fmt.Errorf("unknown -role %q (want leader or follower)", cfg.role)
	}

	lib, err := buildLibrary(logger, analyzer, cfg, reg)
	if err != nil {
		return err
	}
	defer lib.Close()

	// Any durable node exports its WAL to followers — a leader serves them
	// directly, and a follower that gets promoted starts serving its own
	// downstream replicas without a restart.
	var hub *repl.Hub
	if engines := libEngines(lib); engines != nil {
		hub, err = repl.NewHub(engines, reg, logger.Printf)
		if err != nil {
			return err
		}
	}
	var follower *repl.Follower
	if cfg.role == "follower" {
		if cfg.dataDir == "" {
			return fmt.Errorf("-role follower requires -data-dir: a follower journals every replicated record so it can be promoted")
		}
		if cfg.leaderURL == "" {
			return fmt.Errorf("-role follower requires -leader-url")
		}
		follower, err = repl.Start(repl.Options{
			LeaderURL:       strings.TrimSuffix(cfg.leaderURL, "/"),
			Token:           cfg.replToken,
			ID:              cfg.followerID,
			Dir:             cfg.dataDir,
			Appliers:        libAppliers(lib),
			ReadyLagRecords: cfg.replLagReady,
			Metrics:         reg,
			Logf:            logger.Printf,
		})
		if err != nil {
			return err
		}
		defer follower.Close()
		logger.Printf("replicating from %s as %q (%d shards)", cfg.leaderURL, cfg.followerID, len(libAppliers(lib)))
	}

	opts := server.Options{
		Tokens:           cfg.tokens,
		CacheSize:        cfg.cacheSize,
		Workers:          cfg.workers,
		QueueDepth:       cfg.queue,
		SnapshotPath:     cfg.save,
		RebuildBudget:    cfg.rebuildAfter,
		RebuildDebounce:  cfg.rebuildDebounce,
		Metrics:          reg,
		DisableMetrics:   !cfg.metrics,
		EnablePprof:      cfg.pprof,
		Rate:             cfg.rate,
		Burst:            cfg.burst,
		MaxInflight:      cfg.maxInflight,
		ReqTimeout:       cfg.reqTimeout,
		MemBudget:        cfg.memBudget,
		TraceSample:      cfg.traceSample,
		TraceSlow:        cfg.traceSlow,
		TraceRing:        cfg.traceRing,
		ReplHub:          hub,
		Follower:         follower,
		LeaderURL:        strings.TrimSuffix(cfg.leaderURL, "/"),
		WALPressureBytes: cfg.walPressure,
		ReplLagBytes:     cfg.replLagBytes,
		Logf:             logger.Printf,
	}
	if cfg.traceSlow == 0 {
		// The flag's "0 keeps every trace" spelling maps to the Options'
		// negative spelling (Options zero means "use the default").
		opts.TraceSlow = -1
	}
	if cfg.anon != "" && cfg.anon != "none" {
		clearance, err := access.ParseClearance(cfg.anon)
		if err != nil {
			return err
		}
		opts.Anonymous = &access.User{Name: "anonymous", Clearance: clearance}
	}
	srv := server.New(lib, opts)
	defer srv.Close()

	// The transport timeouts are the slowloris defence: a client that
	// dribbles its headers, trickles a request body, or never reads its
	// response occupies a connection, not a goroutine forever. WriteTimeout
	// is sized above the admin request deadline (4x -req-timeout) so the
	// application-level 503 always beats the transport cutting the wire.
	httpSrv := &http.Server{
		Addr:              cfg.addr,
		Handler:           srv,
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       2 * time.Minute,
		WriteTimeout:      2 * time.Minute,
		IdleTimeout:       2 * time.Minute,
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() {
		logger.Printf("serving %d videos on %s", lib.Stats().Videos, cfg.addr)
		errc <- httpSrv.ListenAndServe()
	}()

	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	logger.Printf("shutting down...")
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(shutdownCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		logger.Printf("shutdown: %v", err)
	}
	srv.Close() // drain in-flight ingest jobs before snapshotting
	if lib.Durable() {
		// A clean shutdown is a free checkpoint: the next boot loads one
		// snapshot and replays an empty tail.
		if err := lib.Checkpoint(); err != nil {
			logger.Printf("shutdown checkpoint: %v", err)
		}
	}
	if cfg.save != "" {
		if err := store.WriteFileAtomic(cfg.save, lib.Save); err != nil {
			return fmt.Errorf("saving snapshot: %w", err)
		}
		logger.Printf("library snapshot saved to %s", cfg.save)
	}
	return nil
}

// buildLibrary assembles the serving library: recover the durable data
// directory (or start empty), import a legacy snapshot, mine bootstrap
// corpus videos, and build the index. Every registration into a durable
// library — imported, bootstrapped or later ingested — is journaled.
func buildLibrary(logger *log.Logger, analyzer *classminer.Analyzer, cfg config, reg *metrics.Registry) (library, error) {
	if cfg.shards < 1 {
		return nil, fmt.Errorf("-shards must be at least 1, got %d", cfg.shards)
	}
	var lib library
	if cfg.dataDir != "" {
		wopts, err := syncPolicy(cfg.fsync)
		if err != nil {
			return nil, err
		}
		wopts.SyncEvery = cfg.fsyncEvery
		wopts.SegmentBytes = cfg.segBytes
		wopts.CheckpointBytes = cfg.ckptBytes
		wopts.CheckpointRecords = cfg.ckptRecords
		wopts.CompactBytes = cfg.compactBytes
		wopts.ReplPinBudgetBytes = cfg.replPinBudget
		wopts.Metrics = reg
		wopts.Logf = logger.Printf
		// A SHARDS manifest marks a sharded layout and pins its count; it
		// wins over the flag default so reopening a sharded dir needs no
		// flags, but an explicit conflicting -shards is an error. Plain
		// dirs (including every pre-sharding data dir) stay on the classic
		// single-library path byte-for-byte.
		persisted, err := shard.Count(cfg.dataDir)
		if err != nil {
			return nil, err
		}
		if persisted > 0 && cfg.shardsSet && cfg.shards != persisted {
			return nil, fmt.Errorf("data dir %s holds %d shards but -shards %d was given (the count is fixed at creation)", cfg.dataDir, persisted, cfg.shards)
		}
		if persisted > 0 || cfg.shards > 1 {
			n := cfg.shards
			if persisted > 0 {
				n = persisted
			}
			start := time.Now()
			slib, err := shard.Recover(cfg.dataDir, n, analyzer, wopts)
			if err != nil {
				return nil, fmt.Errorf("recovering %s: %w", cfg.dataDir, err)
			}
			logger.Printf("recovered %d videos from %s (%d shards, parallel boot %v)",
				slib.Stats().Videos, cfg.dataDir, slib.ShardCount(), time.Since(start).Round(time.Millisecond))
			lib = slib
		} else {
			plib, err := classminer.Recover(cfg.dataDir, analyzer, wopts)
			if err != nil {
				return nil, fmt.Errorf("recovering %s: %w", cfg.dataDir, err)
			}
			logger.Printf("recovered %d videos from %s", plib.Stats().Videos, cfg.dataDir)
			lib = plib
		}
	} else if cfg.shards > 1 {
		slib, err := shard.New(analyzer, cfg.shards)
		if err != nil {
			return nil, err
		}
		lib = slib
	} else {
		lib = classminer.NewLibrary(analyzer)
	}

	if cfg.load != "" {
		n, err := importSnapshot(lib, cfg.load)
		if err != nil {
			lib.Close()
			return nil, fmt.Errorf("loading %s: %w", cfg.load, err)
		}
		logger.Printf("imported %d videos from %s", n, cfg.load)
	}

	if cfg.bootstrap != "" {
		names := strings.Split(cfg.bootstrap, ",")
		if cfg.bootstrap == "all" {
			names = synth.CorpusNames()
		}
		for _, name := range names {
			name = strings.TrimSpace(name)
			if lib.Video(name) != nil {
				continue // already recovered or imported
			}
			script := synth.CorpusScript(name, cfg.scale, cfg.seed)
			if script == nil {
				lib.Close()
				return nil, fmt.Errorf("unknown corpus video %q (have %v)", name, synth.CorpusNames())
			}
			v, err := synth.Generate(synth.DefaultConfig(), script, cfg.seed)
			if err != nil {
				lib.Close()
				return nil, err
			}
			logger.Printf("mining %q (%d frames)...", name, len(v.Frames))
			if _, err := lib.AddVideo(v, cfg.subcluster); err != nil {
				lib.Close()
				return nil, err
			}
		}
	}

	if lib.Size() > 0 && lib.IndexStale() {
		if err := lib.BuildIndex(); err != nil {
			lib.Close()
			return nil, err
		}
		logger.Printf("index built over %d shots", lib.Stats().IndexedShots)
	}
	return lib, nil
}

// libEngines exposes the per-shard WAL engines behind the library for the
// replication hub, or nil when the library (or any shard) is not durable.
func libEngines(lib library) []*wal.Engine {
	switch l := lib.(type) {
	case *classminer.Library:
		if e := l.Engine(); e != nil {
			return []*wal.Engine{e}
		}
	case *shard.Library:
		engines := l.Engines()
		for _, e := range engines {
			if e == nil {
				return nil
			}
		}
		return engines
	}
	return nil
}

// libAppliers exposes the per-shard replication targets behind the library
// (the shard layout must match the leader's, which the pull protocol
// cross-checks via X-Repl-Shards).
func libAppliers(lib library) []repl.Applier {
	switch l := lib.(type) {
	case *classminer.Library:
		return []repl.Applier{l}
	case *shard.Library:
		out := make([]repl.Applier, l.ShardCount())
		for i := range out {
			out[i] = l.ShardAt(i)
		}
		return out
	}
	return nil
}

// importSnapshot registers every video of a legacy single-file snapshot
// that the library does not already hold, reporting how many were new. On
// a durable library the imports are journaled like any registration, so
// -load doubles as a one-shot migration into -data-dir.
func importSnapshot(lib library, path string) (int, error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, err
	}
	defer f.Close()
	return lib.ImportSnapshot(f, true)
}
