// Command classminerd serves a mined video library over HTTP — the online
// counterpart of the paper's §6 database: hierarchical k-NN search, mined-
// event scene queries, content-structure browsing and scalable-skimming
// metadata, all behind multilevel access control.
//
// The library is populated from a snapshot (-load), by mining synthetic
// corpus videos at startup (-bootstrap), or later through POST /v1/videos.
// On SIGINT/SIGTERM the daemon shuts down gracefully and, when -save is
// set, checkpoints the library atomically.
//
// Usage:
//
//	classminerd -addr :8471 -bootstrap laparoscopy -scale 0.4 \
//	    -token s3cret=dr.lee:clinician:surgeon -anon public -save lib.json
//
// Then:
//
//	curl localhost:8471/healthz
//	curl localhost:8471/v1/videos
//	curl localhost:8471/v1/videos/laparoscopy
//	curl -X POST localhost:8471/v1/search \
//	    -d '{"video":"laparoscopy","shot":0,"k":5}'
//	curl localhost:8471/v1/events/dialog
//	curl -H 'Authorization: Bearer s3cret' -X POST localhost:8471/v1/videos \
//	    -d '{"corpus":"skin-examination","subcluster":"medicine","scale":0.4}'
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"classminer"
	"classminer/internal/access"
	"classminer/internal/server"
	"classminer/internal/store"
	"classminer/internal/synth"
)

// tokenFlags accumulates repeated -token values of the form
// token=name:clearance[:role1|role2...].
type tokenFlags struct {
	users map[string]access.User
}

func (t *tokenFlags) String() string { return fmt.Sprintf("%d tokens", len(t.users)) }

func (t *tokenFlags) Set(v string) error {
	tok, spec, ok := strings.Cut(v, "=")
	if !ok || tok == "" {
		return fmt.Errorf("want token=name:clearance[:roles], got %q", v)
	}
	parts := strings.Split(spec, ":")
	if len(parts) < 2 || len(parts) > 3 {
		return fmt.Errorf("want token=name:clearance[:roles], got %q", v)
	}
	clearance, err := access.ParseClearance(parts[1])
	if err != nil {
		return err
	}
	u := access.User{Name: parts[0], Clearance: clearance}
	if len(parts) == 3 && parts[2] != "" {
		u.Roles = strings.Split(parts[2], "|")
	}
	if t.users == nil {
		t.users = map[string]access.User{}
	}
	t.users[tok] = u
	return nil
}

func main() {
	var tokens tokenFlags
	addr := flag.String("addr", ":8471", "listen address")
	load := flag.String("load", "", "load a library snapshot (JSON written by -save or classminer -save)")
	save := flag.String("save", "", "snapshot path written on shutdown and by POST /v1/admin/save")
	bootstrap := flag.String("bootstrap", "", "comma-separated corpus videos to mine at startup, or \"all\"")
	scale := flag.Float64("scale", 0.4, "bootstrap corpus scale")
	seed := flag.Int64("seed", 2003, "bootstrap corpus seed")
	subcluster := flag.String("subcluster", "medicine", "concept subcluster for bootstrapped videos")
	anon := flag.String("anon", "public", "clearance for unauthenticated requests (\"none\" to require a token)")
	workers := flag.Int("workers", 2, "ingest worker pool size")
	queue := flag.Int("queue", 8, "ingest queue depth")
	cacheSize := flag.Int("cache", 256, "search cache entries (negative disables)")
	skipEvents := flag.Bool("skip-events", false, "mine structure only (faster startup, no event queries on bootstrapped videos)")
	flag.Var(&tokens, "token", "token=name:clearance[:role1|role2] (repeatable)")
	flag.Parse()

	if err := run(*addr, *load, *save, *bootstrap, *scale, *seed, *subcluster,
		*anon, *workers, *queue, *cacheSize, *skipEvents, tokens.users); err != nil {
		fmt.Fprintln(os.Stderr, "classminerd:", err)
		os.Exit(1)
	}
}

func run(addr, load, save, bootstrap string, scale float64, seed int64,
	subcluster, anon string, workers, queue, cacheSize int, skipEvents bool,
	tokens map[string]access.User) error {
	logger := log.New(os.Stderr, "classminerd: ", log.LstdFlags)

	logger.Printf("training analyzer (skipEvents=%v)...", skipEvents)
	analyzer, err := classminer.NewAnalyzer(classminer.Options{SkipEvents: skipEvents})
	if err != nil {
		return err
	}

	lib, err := buildLibrary(logger, analyzer, load, bootstrap, scale, seed, subcluster)
	if err != nil {
		return err
	}

	opts := server.Options{
		Tokens:       tokens,
		CacheSize:    cacheSize,
		Workers:      workers,
		QueueDepth:   queue,
		SnapshotPath: save,
		Logf:         logger.Printf,
	}
	if anon != "" && anon != "none" {
		clearance, err := access.ParseClearance(anon)
		if err != nil {
			return err
		}
		opts.Anonymous = &access.User{Name: "anonymous", Clearance: clearance}
	}
	srv := server.New(lib, opts)
	defer srv.Close()

	httpSrv := &http.Server{Addr: addr, Handler: srv}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() {
		logger.Printf("serving %d videos on %s", lib.Stats().Videos, addr)
		errc <- httpSrv.ListenAndServe()
	}()

	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	logger.Printf("shutting down...")
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(shutdownCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		logger.Printf("shutdown: %v", err)
	}
	srv.Close() // drain in-flight ingest jobs before snapshotting
	if save != "" {
		if err := store.WriteFileAtomic(save, lib.Save); err != nil {
			return fmt.Errorf("saving snapshot: %w", err)
		}
		logger.Printf("library snapshot saved to %s", save)
	}
	return nil
}

// buildLibrary loads a snapshot and/or mines bootstrap corpus videos.
func buildLibrary(logger *log.Logger, analyzer *classminer.Analyzer,
	load, bootstrap string, scale float64, seed int64, subcluster string) (*classminer.Library, error) {
	var lib *classminer.Library
	if load != "" {
		f, err := os.Open(load)
		if err != nil {
			return nil, err
		}
		lib, err = classminer.LoadLibrary(f, analyzer)
		f.Close()
		if err != nil {
			return nil, fmt.Errorf("loading %s: %w", load, err)
		}
		logger.Printf("loaded %d videos from %s", lib.Stats().Videos, load)
	} else {
		lib = classminer.NewLibrary(analyzer)
	}

	if bootstrap != "" {
		names := strings.Split(bootstrap, ",")
		if bootstrap == "all" {
			names = synth.CorpusNames()
		}
		for _, name := range names {
			name = strings.TrimSpace(name)
			if lib.Video(name) != nil {
				continue // already in the snapshot
			}
			script := synth.CorpusScript(name, scale, seed)
			if script == nil {
				return nil, fmt.Errorf("unknown corpus video %q (have %v)", name, synth.CorpusNames())
			}
			v, err := synth.Generate(synth.DefaultConfig(), script, seed)
			if err != nil {
				return nil, err
			}
			logger.Printf("mining %q (%d frames)...", name, len(v.Frames))
			if _, err := lib.AddVideo(v, subcluster); err != nil {
				return nil, err
			}
		}
		if err := lib.BuildIndex(); err != nil {
			return nil, err
		}
		logger.Printf("index built over %d shots", lib.Stats().IndexedShots)
	}
	return lib, nil
}
