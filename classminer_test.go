package classminer

import (
	"bytes"
	"math/rand"
	"sort"
	"strings"
	"sync"
	"testing"

	"classminer/internal/synth"
)

var (
	libOnce sync.Once
	lib     *Library
	libErr  error
)

// sharedLibrary builds one two-video library for all integration tests.
func sharedLibrary(t testing.TB) *Library {
	t.Helper()
	libOnce.Do(func() {
		a, err := NewAnalyzer(Options{})
		if err != nil {
			libErr = err
			return
		}
		lib = NewLibrary(a)
		for i, name := range []string{"laparoscopy", "skin-examination"} {
			script := synth.CorpusScript(name, 0.25, 99)
			v, err := synth.Generate(synth.DefaultConfig(), script, int64(100+i))
			if err != nil {
				libErr = err
				return
			}
			if _, err := lib.AddVideo(v, "medicine"); err != nil {
				libErr = err
				return
			}
		}
		libErr = lib.BuildIndex()
	})
	if libErr != nil {
		t.Fatal(libErr)
	}
	return lib
}

func TestLibraryEndToEnd(t *testing.T) {
	l := sharedLibrary(t)
	if l.Size() == 0 {
		t.Fatal("no shots indexed")
	}
	ve := l.Video("laparoscopy")
	if ve == nil {
		t.Fatal("video not registered")
	}
	if len(ve.Result.Scenes) == 0 {
		t.Fatal("no scenes mined")
	}
	// Query by example: a shot from the library should find itself.
	q := ve.Result.Shots[0].Feature()
	hits, stats, err := l.Search(User{Name: "dr", Clearance: Administrator}, q, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(hits) == 0 {
		t.Fatal("no search hits")
	}
	if stats.FloatOps <= 0 || stats.Candidates <= 0 {
		t.Fatalf("stats = %+v", stats)
	}
	if hits[0].Dist > hits[len(hits)-1].Dist {
		t.Fatal("hits not ranked")
	}
}

func TestLibraryAccessControlFiltersSearch(t *testing.T) {
	l := sharedLibrary(t)
	l.Protect(Rule{Concept: "medicine/clinical operation", MinClearance: Clinician})

	ve := l.Video("laparoscopy")
	// Find a shot indexed under clinical operation.
	var clinicalQuery []float64
	for _, sc := range ve.Result.Scenes {
		if sc.Event == EventClinicalOperation && sc.ShotCount() > 0 {
			clinicalQuery = sc.Shots()[0].Feature()
			break
		}
	}
	if clinicalQuery == nil {
		t.Skip("no clinical scene mined in this corpus slice")
	}
	full, _, err := l.Search(User{Name: "dr", Clearance: Clinician}, clinicalQuery, 10)
	if err != nil {
		t.Fatal(err)
	}
	restricted, _, err := l.Search(User{Name: "kid", Clearance: Public}, clinicalQuery, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(restricted) >= len(full) {
		t.Fatalf("public user sees %d hits, clinician %d — filtering failed", len(restricted), len(full))
	}
	for _, h := range restricted {
		if h.Entry.Path[len(h.Entry.Path)-1] == "medicine/clinical operation" {
			t.Fatal("protected entry leaked to public user")
		}
	}
}

func TestLibraryScenesByEvent(t *testing.T) {
	l := sharedLibrary(t)
	admin := User{Name: "admin", Clearance: Administrator}
	total := 0
	for _, kind := range []EventKind{EventPresentation, EventDialog, EventClinicalOperation} {
		refs := l.ScenesByEvent(admin, kind)
		total += len(refs)
		for _, r := range refs {
			if r.Scene.Event != kind {
				t.Fatalf("wrong event in refs: %v", r.Scene.Event)
			}
			if r.VideoName == "" {
				t.Fatal("missing video name")
			}
		}
	}
	if total == 0 {
		t.Fatal("no event scenes found at all")
	}
	// Deny dialogs and verify the query honours it.
	l.Protect(Rule{Concept: "medicine/dialog", Deny: true})
	if refs := l.ScenesByEvent(User{Name: "x", Clearance: Administrator}, EventDialog); len(refs) != 0 {
		t.Fatalf("denied dialogs still visible: %d", len(refs))
	}
}

func TestLibraryErrors(t *testing.T) {
	a, err := NewAnalyzer(Options{SkipEvents: true})
	if err != nil {
		t.Fatal(err)
	}
	l := NewLibrary(a)
	if err := l.BuildIndex(); err == nil {
		t.Fatal("want error building empty index")
	}
	if _, _, err := l.Search(User{}, nil, 1); err == nil {
		t.Fatal("want error searching unbuilt index")
	}
	rng := rand.New(rand.NewSource(1))
	script := &synth.Script{Name: "v", Scenes: []synth.SceneSpec{synth.EstablishingScene(rng, 0, 1)}}
	v, err := synth.Generate(synth.DefaultConfig(), script, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l.AddVideo(v, "astrology"); err == nil {
		t.Fatal("want error for unknown subcluster")
	}
	if _, err := l.AddVideo(v, "medicine"); err != nil {
		t.Fatal(err)
	}
	if _, err := l.AddVideo(v, "medicine"); err == nil {
		t.Fatal("want error for duplicate video")
	}
}

func TestSkimLevelsFromLibrary(t *testing.T) {
	l := sharedLibrary(t)
	ve := l.Video("skin-examination")
	sk := ve.Result.Skim
	var fcrs []float64
	for lvl := SkimLevel1; lvl <= SkimLevel4; lvl++ {
		fcrs = append(fcrs, sk.FCR(lvl))
	}
	if !sort.IsSorted(sort.Reverse(sort.Float64Slice(fcrs))) {
		t.Fatalf("FCR not monotone across levels: %v", fcrs)
	}
}

func TestLibrarySaveLoadRoundTrip(t *testing.T) {
	l := sharedLibrary(t)
	var buf bytes.Buffer
	if err := l.Save(&buf); err != nil {
		t.Fatal(err)
	}
	a, err := NewAnalyzer(Options{SkipEvents: true})
	if err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadLibrary(&buf, a)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Size() != l.Size() {
		t.Fatalf("loaded size %d, want %d", loaded.Size(), l.Size())
	}
	if len(loaded.VideoNames()) != len(l.VideoNames()) {
		t.Fatal("video names lost")
	}
	// The loaded library must answer queries without re-mining.
	ve := loaded.Video("laparoscopy")
	if ve == nil || len(ve.Result.Scenes) == 0 {
		t.Fatal("loaded video incomplete")
	}
	q := ve.Result.Shots[0].Feature()
	hits, _, err := loaded.Search(User{Name: "a", Clearance: Administrator}, q, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(hits) == 0 {
		t.Fatal("loaded index returned nothing")
	}
	// Events survive the round trip.
	events := 0
	for _, sc := range ve.Result.Scenes {
		if sc.Event != EventUnknown {
			events++
		}
	}
	if events == 0 {
		t.Fatal("mined events lost in round trip")
	}
}

func TestLoadLibraryBadInput(t *testing.T) {
	a, err := NewAnalyzer(Options{SkipEvents: true})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := LoadLibrary(strings.NewReader("junk"), a); err == nil {
		t.Fatal("want parse error")
	}
}

func TestLibraryConcurrentAccess(t *testing.T) {
	l := sharedLibrary(t)
	ve := l.Video("laparoscopy")
	q := ve.Result.Shots[0].Feature()
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				switch i % 4 {
				case 0:
					if _, _, err := l.Search(User{Clearance: Administrator}, q, 5); err != nil {
						errs <- err
						return
					}
				case 1:
					l.ScenesByEvent(User{Clearance: Administrator}, EventClinicalOperation)
				case 2:
					_ = l.VideoNames()
					_ = l.Size()
				case 3:
					l.Protect(Rule{Concept: "medicine/other", MinClearance: Student})
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}
