// Package classminer is a from-scratch Go implementation of ClassMiner —
// the medical video mining framework of Zhu, Aref, Fan, Catlin and
// Elmagarmid, "Medical Video Mining for Efficient Database Indexing,
// Management and Access" (ICDE 2003).
//
// The package offers two entry points:
//
//   - Analyzer mines a single video's content structure (shots → groups →
//     scenes → clustered scenes), mines the three event categories
//     (presentation, dialog, clinical operation) from visual and audio
//     cues, and builds the four-level scalable skimming of §5.
//
//   - Library manages a collection of mined videos behind the paper's
//     hierarchical database model: a concept-derived index with
//     multi-center non-leaf nodes and hash-table leaves (§2, §6.2), and
//     hierarchical multilevel access control.
//
// A third entry point lives outside this package: internal/server wraps a
// Library in a concurrent HTTP/JSON API and cmd/classminerd runs it as a
// daemon. See README.md for the package map, quickstart and experiment
// commands (cmd/experiments regenerates every figure and table).
package classminer

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"sort"
	"sync"

	"classminer/internal/access"
	"classminer/internal/concept"
	"classminer/internal/core"
	"classminer/internal/index"
	"classminer/internal/mat"
	"classminer/internal/metrics"
	"classminer/internal/skim"
	"classminer/internal/store"
	"classminer/internal/trace"
	"classminer/internal/vidmodel"
	"classminer/internal/wal"
)

// Re-exported media and result types. These aliases are the public face of
// the internal model; downstream code only imports this package.
type (
	// Video is a decoded media document (frames + aligned audio).
	Video = vidmodel.Video
	// Frame is a small dense RGB raster.
	Frame = vidmodel.Frame
	// AudioTrack is a mono PCM stream.
	AudioTrack = vidmodel.AudioTrack
	// Shot is the physical unit of §3 Definition 2.
	Shot = vidmodel.Shot
	// Group is the intermediate unit between shots and scenes.
	Group = vidmodel.Group
	// Scene is a collection of semantically related adjacent groups.
	Scene = vidmodel.Scene
	// ClusteredScene groups recurrences of visually similar scenes.
	ClusteredScene = vidmodel.ClusteredScene
	// EventKind is a mined event category.
	EventKind = vidmodel.EventKind
	// Options configures the mining pipeline.
	Options = core.Options
	// Result is the mined content structure of one video.
	Result = core.Result
	// User is an access-control subject.
	User = access.User
	// Clearance is a multilevel-security level.
	Clearance = access.Clearance
	// Rule protects a concept subtree.
	Rule = access.Rule
	// SearchHit is one ranked query result.
	SearchHit = index.Result
	// SearchStats counts the work a search performed (§6.2 cost model).
	SearchStats = index.Stats
	// SkimLevel indexes the four scalable-skimming layers of §5.
	SkimLevel = skim.Level
	// Skim is a built scalable skimming.
	Skim = skim.Skim
	// DurableOptions configures the write-ahead log behind Recover.
	DurableOptions = wal.Options
	// WALStats reports a durable library's log lag (records and bytes
	// appended since the last checkpoint, and how much of it is dead —
	// superseded by deletes and replacements).
	WALStats = wal.Stats
	// CompactStats reports what one sealed-segment compaction reclaimed.
	CompactStats = wal.CompactResult
)

// Write-ahead-log fsync policies for DurableOptions.Sync.
const (
	SyncAlways   = wal.SyncAlways
	SyncInterval = wal.SyncInterval
	SyncNever    = wal.SyncNever
)

// ErrDuplicateVideo reports a registration under a name the library already
// holds. Recovery relies on it: records that straddle a checkpoint appear
// in both the snapshot and the log tail, and replay skips the second copy
// by matching this error.
var ErrDuplicateVideo = errors.New("classminer: video already registered")

// ErrUnknownVideo reports a delete of a name the library does not hold.
var ErrUnknownVideo = errors.New("classminer: video not registered")

// ErrForbidden reports a policy-gated mutation the user may not perform
// (DeleteVideoAs on a video whose subcluster the policy hides from them).
var ErrForbidden = errors.New("classminer: access denied")

// The four skimming layers (granularity increases from 4 down to 1).
const (
	SkimLevel1 = skim.Level1
	SkimLevel2 = skim.Level2
	SkimLevel3 = skim.Level3
	SkimLevel4 = skim.Level4
)

// Event categories (§4.3).
const (
	EventUnknown           = vidmodel.EventUnknown
	EventPresentation      = vidmodel.EventPresentation
	EventDialog            = vidmodel.EventDialog
	EventClinicalOperation = vidmodel.EventClinicalOperation
)

// Clearance levels of the built-in lattice.
const (
	Public        = access.Public
	Student       = access.Student
	Nurse         = access.Nurse
	Clinician     = access.Clinician
	Administrator = access.Administrator
)

// Analyzer mines video content structure and events. Construct once with
// NewAnalyzer and reuse across videos (it holds a trained audio classifier).
type Analyzer struct {
	inner *core.Analyzer
}

// NewAnalyzer builds a mining pipeline; the zero Options reproduce the
// paper's published settings.
func NewAnalyzer(opts Options) (*Analyzer, error) {
	inner, err := core.NewAnalyzer(opts)
	if err != nil {
		return nil, err
	}
	return &Analyzer{inner: inner}, nil
}

// Analyze runs the full Fig. 3 pipeline on one video.
func (a *Analyzer) Analyze(v *Video) (*Result, error) { return a.inner.Analyze(v) }

// VideoEntry is a video registered in a Library.
type VideoEntry struct {
	Result     *Result
	Subcluster string // concept hierarchy placement (e.g. "medicine")
}

// Library is the paper's video database: mined videos behind a
// concept-hierarchy index with access control. All methods are safe for
// concurrent use; reads proceed in parallel while registration, deletion
// and policy changes serialise. BuildIndex is copy-on-write: the expensive
// fit runs outside the lock against a snapshot of the entries and the
// finished index is swapped in atomically, so concurrent searches keep
// answering from the previous index (at worst slightly stale) instead of
// blocking or erroring while a rebuild is in flight. Deletion and
// replacement (DeleteVideo, ReplaceVideo/ReplaceResult) follow the same
// discipline: the entry set and flat feature matrix are rebuilt into fresh
// arrays and the old index serves until the next BuildIndex.
type Library struct {
	mu        sync.RWMutex
	analyzer  *Analyzer
	hierarchy *concept.Hierarchy
	policy    *access.Policy
	videos    map[string]*VideoEntry
	entries   []*index.Entry
	// featData is the flat row-major feature matrix over entries (row i =
	// entries[i], featDim columns), grown at registration and reused across
	// every index rebuild so BuildIndex never re-extracts shot features.
	featData []float64
	featDim  int
	ix       *index.Index
	// entriesVer counts entry-set mutations; ixVer is the entriesVer the
	// installed index reflects (index is stale while they differ —
	// incremental maintenance usually keeps them equal). ixFitVer is the
	// entriesVer of the installed index's last *full fit*: the gap between
	// it and ixVer is served by the incremental overlay. lastRemoveVer
	// records the entriesVer of the most recent removal, which compacts the
	// entry arrays — a BuildIndex snapshotted before it fit rows that no
	// longer exist and must be discarded.
	entriesVer    int64
	ixVer         int64
	ixFitVer      int64
	lastRemoveVer int64
	// gen counts every mutation that can change what a query returns
	// (registration, index swap, policy change). Caches key on it.
	gen int64
	// journal, when non-nil, is the durable storage engine: register,
	// replace and delete append their encoded records to it before
	// mutating in-memory state, and Recover rebuilds the library from its
	// snapshot + log.
	journal *wal.Engine
	// logBytes tracks, per registered video, the on-log size of its
	// journal record (payload + frame overhead) so a delete or replacement
	// can tell the engine how much log just went dead — the signal that
	// triggers sealed-segment compaction. Entries exist only for records
	// on the live log: snapshot-loaded videos have none, and a checkpoint
	// clears the map (their records are about to be pruned with the
	// superseded segments). The figures feed a trigger heuristic, not
	// correctness — Compact recomputes exact deadness from the log itself.
	logBytes map[string]int64
	// deadNote receives (records, bytes) whenever a live log record is
	// superseded: wal.Engine.NoteDead once the journal is attached, a
	// local accumulator while Recover replays (the engine's counters are
	// seeded from it afterwards), nil on a non-durable library.
	deadNote func(records, bytes int64)
	// pendingAck tracks registrations that are installed and staged on the
	// log but whose group commit has not resolved yet: the name maps to the
	// staged record's durability handle. Save waits these out (or drops the
	// ones whose batched fsync failed) so a snapshot never strands a record
	// the log was about to make durable — or resurrect one it clawed back.
	pendingAck map[string]wal.Commit
	// met holds the library's lifecycle instruments (see Instrument). The
	// zero value is fully inert: every instrument is a nil pointer whose
	// methods are no-ops, so un-instrumented libraries pay nothing.
	met libMetrics
}

// libMetrics counts library lifecycle events for the /metrics exposition.
type libMetrics struct {
	registrations *metrics.Counter // fresh registrations installed
	replacements  *metrics.Counter // existing registrations superseded
	deletes       *metrics.Counter // videos unregistered
	ixInserts     *metrics.Counter // shots absorbed into the serving index incrementally
	ixRemoves     *metrics.Counter // shots masked out of the serving index incrementally
}

// Instrument registers the library's metrics on reg: lifecycle counters
// (registrations, replacements, deletes), incremental index maintenance
// counters, and size/staleness gauges sampled at scrape time. The first
// call wins — a second registry gets the gauges (their callbacks read the
// library directly) but the counters keep feeding the first, so one library
// serves one authoritative set of series no matter how many servers wrap it.
// Instruments are created outside l.mu: scrape-time gauge callbacks take
// l.mu while the registry's lock is held, so registering under l.mu would
// invert that order.
func (l *Library) Instrument(reg *metrics.Registry) {
	m := libMetrics{
		registrations: reg.Counter("classminer_registrations_total",
			"Videos registered (fresh names; replacements counted separately)."),
		replacements: reg.Counter("classminer_replacements_total",
			"Existing registrations superseded by re-ingest."),
		deletes: reg.Counter("classminer_deletes_total",
			"Videos unregistered."),
		ixInserts: reg.Counter("classminer_index_incremental_inserts_total",
			"Shots absorbed into the serving index without a full refit."),
		ixRemoves: reg.Counter("classminer_index_incremental_removes_total",
			"Shots masked out of the serving index without a full refit."),
	}
	reg.GaugeFunc("classminer_videos", "Videos currently registered.",
		func() float64 { l.mu.RLock(); defer l.mu.RUnlock(); return float64(len(l.videos)) })
	reg.GaugeFunc("classminer_shots", "Indexable shots currently registered.",
		func() float64 { return float64(l.Size()) })
	reg.GaugeFunc("classminer_index_staleness",
		"Incremental-overlay fraction of the serving index (0 = freshly fit).",
		func() float64 { return l.IndexStaleness() })
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.met.registrations == nil {
		l.met = m
	}
}

// NewLibrary creates an empty library using the Fig. 2 medical concept
// hierarchy and the given analyzer.
func NewLibrary(a *Analyzer) *Library {
	return &Library{
		analyzer:  a,
		hierarchy: concept.Medical(),
		policy:    access.NewPolicy(),
		videos:    map[string]*VideoEntry{},
	}
}

// Protect adds an access-control rule over a concept subtree.
func (l *Library) Protect(r Rule) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.policy.Add(r)
	l.gen++
}

// Generation returns a counter that advances whenever a mutation could
// change what a query returns. Result caches key on it so an ingested
// video, an index swap or a new protection rule invalidates stale answers.
func (l *Library) Generation() int64 {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return l.gen
}

// checkSubcluster verifies that name is an actual subcluster-level concept
// ("medicine", "nursing", "dentistry"). Placement must happen at that
// level: shot paths are rooted under the subcluster's ancestors, so filing
// a video under a cluster or scene concept would put it outside the
// subtrees that protection rules govern.
func (l *Library) checkSubcluster(name string) error {
	n := l.hierarchy.Find(name)
	if n == nil || n.Level != concept.LevelSubcluster {
		return fmt.Errorf("classminer: unknown subcluster concept %q", name)
	}
	return nil
}

// AddVideo mines a video and registers its shots under the given
// subcluster concept ("medicine", "nursing", "dentistry"). The index is
// invalidated; call BuildIndex after the last AddVideo.
func (l *Library) AddVideo(v *Video, subcluster string) (*Result, error) {
	return l.AddVideoCtx(context.Background(), v, subcluster)
}

// AddVideoCtx is AddVideo with tracing: when ctx carries a trace span
// (a traced ingest job), the mining, journaling, and install stages each
// record child spans.
func (l *Library) AddVideoCtx(ctx context.Context, v *Video, subcluster string) (*Result, error) {
	if err := l.checkSubcluster(subcluster); err != nil {
		return nil, err
	}
	l.mu.RLock()
	_, dup := l.videos[v.Name]
	l.mu.RUnlock()
	if dup {
		return nil, fmt.Errorf("%w: %q", ErrDuplicateVideo, v.Name)
	}
	// Mining runs outside the lock: it is the slow part and touches no
	// shared state.
	sp := trace.StartSpan(ctx, "mine")
	res, err := l.analyzer.Analyze(v)
	sp.End()
	if err != nil {
		return nil, err
	}
	return res, l.register(ctx, v.Name, res, subcluster)
}

// AddResult registers an already-mined result (e.g. loaded from a snapshot
// or produced by a remote miner) under the given subcluster concept. Like
// AddVideo it leaves the index stale; call BuildIndex afterwards.
func (l *Library) AddResult(res *Result, subcluster string) error {
	return l.AddResultCtx(context.Background(), res, subcluster)
}

// AddResultCtx is AddResult with tracing (see AddVideoCtx).
func (l *Library) AddResultCtx(ctx context.Context, res *Result, subcluster string) error {
	if res == nil || res.Video == nil {
		return fmt.Errorf("classminer: nil result")
	}
	if err := l.checkSubcluster(subcluster); err != nil {
		return err
	}
	return l.register(ctx, res.Video.Name, res, subcluster)
}

// register installs a mined result under the lock (via installLocked),
// refusing names the library already holds.
//
// On a durable library the registration is write-ahead logged: the encoded
// record is staged on the log before any in-memory state changes, so every
// registration the caller saw succeed is replayed by Recover after a crash.
// Validation runs first — a registration that would fail must never reach
// the log, or replay would resurrect it. The stage and the install happen
// in one critical section (log order always equals install order), but the
// covering fsync is *waited for outside the write lock*: concurrent
// registrations stage into the same write-ahead-log batch and share one
// group-commit flush, so durable ingest throughput scales with writers
// instead of serialising the whole pool on one disk flush per record. The
// registration is visible to searches the moment it is installed, a
// deliberate pre-ack read: if the batched fsync fails, the install is
// compensated away and the caller told the registration failed — exactly
// what the log (which clawed the record back) will replay. Replace and
// DeleteVideo keep their synchronous shape (stage, wait, then apply under
// the lock) — they still coalesce into whatever batch is in flight.
func (l *Library) register(ctx context.Context, name string, res *Result, subcluster string) error {
	sp := trace.StartSpan(ctx, "register")
	defer sp.End()
	if sp != nil {
		// Nest the encode/install/WAL child spans under "register" rather
		// than the caller's span; the WithValue costs nothing untraced.
		ctx = trace.With(ctx, sp)
	}
	// Encode the journal record outside the write lock: serialising a
	// large mined result is the slow part and needs no library state.
	enc := sp.Start("encode")
	rec, err := l.encodeJournalRecord(wal.RecordRegister, name, res, subcluster)
	if err != nil {
		enc.End()
		return err
	}
	// Deriving the index entries needs no library state; do it outside the
	// write lock so concurrent registrations overlap the work instead of
	// queueing it behind one another.
	newEntries := res.IndexEntries(subcluster)
	enc.End()
	inst := sp.Start("install") // includes the write-lock wait
	l.mu.Lock()
	if _, dup := l.videos[name]; dup {
		l.mu.Unlock()
		inst.End()
		return fmt.Errorf("%w: %q", ErrDuplicateVideo, name)
	}
	dim, err := l.checkEntryDims(name, newEntries, l.featDim)
	if err != nil {
		l.mu.Unlock()
		inst.End()
		return err
	}
	if rec == nil || l.journal == nil {
		l.installLocked(name, res, subcluster, newEntries, dim)
		l.met.registrations.Inc()
		l.mu.Unlock()
		inst.End()
		return nil
	}
	c, err := l.journal.Begin(rec)
	if err != nil {
		l.mu.Unlock()
		inst.End()
		return fmt.Errorf("classminer: journaling %q: %w", name, err)
	}
	l.setLogSizeLocked(name, int64(len(rec))+wal.FrameOverhead)
	l.installLocked(name, res, subcluster, newEntries, dim)
	ve := l.videos[name]
	if l.pendingAck == nil {
		l.pendingAck = map[string]wal.Commit{}
	}
	l.pendingAck[name] = c
	l.mu.Unlock()
	inst.End()

	if err := c.WaitCtx(ctx); err != nil {
		l.undoUnacked(name, ve)
		return fmt.Errorf("classminer: journaling %q: %w", name, err)
	}
	l.mu.Lock()
	delete(l.pendingAck, name)
	l.mu.Unlock()
	l.met.registrations.Inc()
	return nil
}

// undoUnacked compensates a registration whose staged record was clawed
// back by a failed batched fsync: the install is removed again (unless a
// replacement — whose own record post-dates ours on the log — already owns
// the name) so in-memory state, the caller's error, and the next replay all
// agree the registration never happened.
func (l *Library) undoUnacked(name string, ve *VideoEntry) {
	l.mu.Lock()
	defer l.mu.Unlock()
	delete(l.pendingAck, name)
	if l.videos[name] != ve {
		return
	}
	// The record never survived on the log, so there is nothing to report
	// dead to the compaction trigger.
	delete(l.logBytes, name)
	l.removeLocked(name)
}

// replace installs a mined result under name, superseding any existing
// registration — an upsert: absent names register fresh. On a durable
// library the whole mutation is one wal.RecordReplace record, so replay
// can never observe the delete without the re-add. Replay itself reuses
// this method (the journal is not attached yet, so nothing is re-logged).
// check, when non-nil, runs on the existing entry under the write lock and
// can veto the replacement before anything is logged (the policy gate of
// ReplaceResultAs/ReplaceVideoAs).
func (l *Library) replace(ctx context.Context, name string, res *Result, subcluster string, check func(*VideoEntry) error) error {
	sp := trace.StartSpan(ctx, "replace")
	defer sp.End()
	if sp != nil {
		ctx = trace.With(ctx, sp) // nest the wal.append span under "replace"
	}
	rec, err := l.encodeJournalRecord(wal.RecordReplace, name, res, subcluster)
	if err != nil {
		return err
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	ve, replacing := l.videos[name]
	if replacing && check != nil {
		if err := check(ve); err != nil {
			return err
		}
	}
	newEntries := res.IndexEntries(subcluster)
	// When the victim is the only registered video, its dimensionality
	// leaves with it — validate against an unconstrained library, exactly
	// as the equivalent delete-then-add would.
	baseDim := l.featDim
	if replacing && len(l.videos) == 1 {
		baseDim = 0
	}
	dim, err := l.checkEntryDims(name, newEntries, baseDim)
	if err != nil {
		return err
	}
	if rec != nil && l.journal != nil {
		if err := l.journal.AppendCtx(ctx, rec); err != nil {
			return fmt.Errorf("classminer: journaling replacement of %q: %w", name, err)
		}
	}
	// removeLocked's empty-library branch drops the serving index and
	// fences stale builds — right for a delete, wrong mid-replace: a
	// successor is about to be installed, and the replace contract is
	// that the old index keeps serving until the next BuildIndex. The
	// exception is a replacement that changes the feature dimensionality
	// (possible only when the victim was the sole video): the old index
	// answers queries of the *old* width, and serving it against the
	// library's new width would panic projection deep in Search — there
	// the index stays down, exactly as a delete leaves it.
	oldIx, oldIxVer, oldDim := l.ix, l.ixVer, l.featDim
	l.removeLocked(name) // consumes the superseded record's on-log size
	if l.ix == nil && oldIx != nil && dim == oldDim {
		l.ix, l.ixVer = oldIx, oldIxVer
	}
	if rec != nil && l.journal != nil {
		l.setLogSizeLocked(name, int64(len(rec))+wal.FrameOverhead)
	}
	l.installLocked(name, res, subcluster, newEntries, dim)
	if replacing {
		l.met.replacements.Inc()
	} else {
		l.met.registrations.Inc()
	}
	return nil
}

// visibleTo returns the lifecycle guard DeleteVideoAs and the *As replace
// variants share: it vetoes mutating a video whose subcluster the policy
// hides from u. It runs under l.mu, so the verdict and the mutation are
// one atomic step.
func (l *Library) visibleTo(u User) func(*VideoEntry) error {
	return func(ve *VideoEntry) error {
		n := l.hierarchy.Find(ve.Subcluster)
		if n == nil || !l.policy.Allowed(u, n.Path()) {
			return fmt.Errorf("%w: subcluster %q", ErrForbidden, ve.Subcluster)
		}
		return nil
	}
}

// checkEntryDims validates that every new entry matches dim (0 = the
// library constrains nothing and the entries establish it), returning the
// dimension to install. Validation runs before any journaling or mutation:
// a registration that would fail must never reach the log.
func (l *Library) checkEntryDims(name string, newEntries []*index.Entry, dim int) (int, error) {
	for _, e := range newEntries {
		d := len(e.Shot.Color) + len(e.Shot.Texture)
		if dim == 0 {
			dim = d
		}
		if d != dim {
			return 0, fmt.Errorf("classminer: video %q shot has %d feature dims, library has %d",
				name, d, dim)
		}
	}
	return dim, nil
}

// installLocked commits a validated registration to in-memory state:
// feature rows are appended to the flat matrix (once per shot, so index
// rebuilds never re-extract them) and the entry set and generation advance.
// When the serving index was current, the new entries are inserted into it
// incrementally (copy-on-write, no refit) so the registration is
// searchable the moment the caller is acknowledged; otherwise — or when an
// entry's concept path has no leaf in the built tree — the index is left
// stale for the coalesced rebuilder. Callers hold l.mu.
func (l *Library) installLocked(name string, res *Result, subcluster string, newEntries []*index.Entry, dim int) {
	l.featDim = dim
	for _, e := range newEntries {
		l.featData = append(l.featData, e.Shot.Color...)
		l.featData = append(l.featData, e.Shot.Texture...)
	}
	l.videos[name] = &VideoEntry{Result: res, Subcluster: subcluster}
	l.entries = append(l.entries, newEntries...)
	wasCurrent := l.ix != nil && l.ixVer == l.entriesVer
	l.entriesVer++
	l.gen++
	if !wasCurrent {
		return
	}
	ix := l.ix
	for _, e := range newEntries {
		nix, err := ix.Insert(e)
		if err != nil {
			// A brand-new concept (or any other incremental limit): keep the
			// pre-mutation index serving and flag staleness instead.
			return
		}
		ix = nix
	}
	l.ix = ix
	l.ixVer = l.entriesVer
	l.met.ixInserts.Add(uint64(len(newEntries)))
}

// removeLocked unregisters name, if present, and compacts the entry list
// and flat feature matrix. Both are rebuilt into *fresh* backing arrays,
// never edited in place: BuildIndex snapshots alias the old arrays
// (capacity-capped slices), and a concurrent search against the installed
// index must keep reading consistent rows until the next swap. When the
// serving index was current, the deleted entries are masked out of it
// incrementally (copy-on-write) so searches stop ranking them immediately;
// the generation bump invalidates response caches either way. Callers hold
// l.mu.
func (l *Library) removeLocked(name string) bool {
	if _, ok := l.videos[name]; !ok {
		return false
	}
	delete(l.videos, name)
	kept := make([]*index.Entry, 0, len(l.entries))
	var data []float64
	if l.featDim > 0 {
		data = make([]float64, 0, len(l.entries)*l.featDim)
	}
	for i, e := range l.entries {
		if e.VideoName == name {
			continue
		}
		kept = append(kept, e)
		if l.featDim > 0 {
			data = append(data, l.featData[i*l.featDim:(i+1)*l.featDim]...)
		}
	}
	wasCurrent := l.ix != nil && l.ixVer == l.entriesVer
	removed := len(l.entries) - len(kept)
	l.entries = kept
	l.featData = data
	empty := len(l.entries) == 0
	if empty && len(l.pendingAck) == 0 {
		// Nothing left to index: drop the installed index now rather than
		// serve a library of ghosts until a BuildIndex that would error,
		// and forget the feature dimensionality — it was learned from the
		// registrations just removed, and an empty library constrains
		// nothing (the next registration re-establishes it). An in-flight
		// unacknowledged registration still pins the dimensionality: its
		// entries validated against it and are about to install.
		l.ix = nil
		l.featDim = 0
		l.featData = nil
	} else if empty {
		l.ix = nil
	}
	l.entriesVer++
	l.gen++
	l.lastRemoveVer = l.entriesVer
	switch {
	case empty:
		// Fence out in-flight builds: a BuildIndex snapshotted before this
		// delete would otherwise reinstall an index of the just-deleted
		// entries — permanently, since BuildIndex on an empty library only
		// errors. (lastRemoveVer already discards them; the ixVer fence
		// keeps IndexStale reporting sane.)
		l.ixVer = l.entriesVer
	case wasCurrent:
		nix, _ := l.ix.Remove(name)
		l.ix = nix
		l.ixVer = l.entriesVer
		l.met.ixRemoves.Add(uint64(removed))
	}
	if n := l.logBytes[name]; n > 0 {
		delete(l.logBytes, name)
		if l.deadNote != nil {
			l.deadNote(1, n)
		}
	}
	return true
}

// remove is removeLocked under the lock (the tombstone-replay path).
func (l *Library) remove(name string) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.removeLocked(name)
}

// setLogSizeLocked records name's journal-record footprint on the live
// log. Callers hold l.mu.
func (l *Library) setLogSizeLocked(name string, n int64) {
	if l.logBytes == nil {
		l.logBytes = map[string]int64{}
	}
	l.logBytes[name] = n
}

// setLogSize is setLogSizeLocked under the lock (the replay path, where
// records enter the library without passing through Append).
func (l *Library) setLogSize(name string, n int64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.setLogSizeLocked(name, n)
}

// encodeJournalRecord serialises a register/replace record for the
// write-ahead log, or returns nil when the library is not durable. The
// envelope payload is the JSON of a store.SavedLibraryEntry — the same
// shape a snapshot holds per video — so snapshot load and log replay share
// one decode path.
func (l *Library) encodeJournalRecord(kind, name string, res *Result, subcluster string) ([]byte, error) {
	l.mu.RLock()
	durable := l.journal != nil
	l.mu.RUnlock()
	if !durable {
		return nil, nil
	}
	saved, err := store.EncodeResult(res)
	if err != nil {
		return nil, fmt.Errorf("classminer: encoding journal record: %w", err)
	}
	entry, err := json.Marshal(store.SavedLibraryEntry{Subcluster: subcluster, Result: saved})
	if err != nil {
		return nil, fmt.Errorf("classminer: encoding journal record: %w", err)
	}
	return wal.EncodeRecord(kind, name, entry)
}

// encodeTombstone serialises a delete record, or returns nil when the
// library is not durable.
func (l *Library) encodeTombstone(name string) ([]byte, error) {
	l.mu.RLock()
	durable := l.journal != nil
	l.mu.RUnlock()
	if !durable {
		return nil, nil
	}
	return wal.EncodeRecord(wal.RecordTombstone, name, nil)
}

// DeleteVideo unregisters a video: its entries leave the library, the flat
// feature matrix is compacted, and the generation advances so cached
// answers stop being served. The installed index keeps serving until the
// next BuildIndex (copy-on-write, exactly like registration: at worst
// slightly stale, never blocking). On a durable library the tombstone is
// journaled before any state changes — replay applies it even over a
// registration recovered from a checkpoint snapshot, so delete wins across
// a crash — and the superseded registration's log footprint is reported to
// the engine, feeding the sealed-segment compaction trigger.
func (l *Library) DeleteVideo(name string) error {
	return l.deleteVideo(context.Background(), name, nil)
}

// DeleteVideoAs is DeleteVideo gated by the library's access policy: the
// user must be allowed to see the video's subcluster, and the check runs
// under the same critical section as the removal — a concurrent
// replacement can never move the video behind a policy wall between the
// check and the delete. It returns an error wrapping ErrForbidden when
// policy denies the user.
func (l *Library) DeleteVideoAs(u User, name string) error {
	return l.deleteVideo(context.Background(), name, l.visibleTo(u))
}

// DeleteVideoAsCtx is DeleteVideoAs with tracing: a traced request records
// the delete and its WAL tombstone append as child spans.
func (l *Library) DeleteVideoAsCtx(ctx context.Context, u User, name string) error {
	return l.deleteVideo(ctx, name, l.visibleTo(u))
}

// deleteVideo journals and applies a tombstone; check, when non-nil, runs
// on the entry under the write lock and can veto the delete before
// anything is logged.
func (l *Library) deleteVideo(ctx context.Context, name string, check func(*VideoEntry) error) error {
	sp := trace.StartSpan(ctx, "delete")
	defer sp.End()
	if sp != nil {
		ctx = trace.With(ctx, sp) // nest the wal.append span under "delete"
	}
	rec, err := l.encodeTombstone(name)
	if err != nil {
		return err
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	ve, ok := l.videos[name]
	if !ok {
		return fmt.Errorf("%w: %q", ErrUnknownVideo, name)
	}
	if check != nil {
		if err := check(ve); err != nil {
			return err
		}
	}
	if rec != nil && l.journal != nil {
		if err := l.journal.AppendCtx(ctx, rec); err != nil {
			return fmt.Errorf("classminer: journaling tombstone for %q: %w", name, err)
		}
	}
	l.removeLocked(name)
	l.met.deletes.Inc()
	return nil
}

// ReplaceResult installs an already-mined result under its video name,
// superseding any existing registration (an upsert: absent names register
// fresh). This is the re-ingest path of a living archive — a clinician
// re-records a procedure and the new cut supersedes the old. The index is
// left stale; call BuildIndex afterwards. On a durable library the whole
// replacement is a single journal record, atomic across crashes.
func (l *Library) ReplaceResult(res *Result, subcluster string) error {
	if res == nil || res.Video == nil {
		return fmt.Errorf("classminer: nil result")
	}
	if err := l.checkSubcluster(subcluster); err != nil {
		return err
	}
	return l.replace(context.Background(), res.Video.Name, res, subcluster, nil)
}

// ReplaceResultAs is ReplaceResult gated by the library's access policy:
// superseding a registration destroys it just as surely as DeleteVideo
// does, so the user must be allowed to see the *existing* video's
// subcluster, checked atomically with the swap (ErrForbidden otherwise).
// Absent names register fresh with no gate — there is nothing to destroy.
func (l *Library) ReplaceResultAs(u User, res *Result, subcluster string) error {
	return l.ReplaceResultAsCtx(context.Background(), u, res, subcluster)
}

// ReplaceResultAsCtx is ReplaceResultAs with tracing (see AddVideoCtx).
func (l *Library) ReplaceResultAsCtx(ctx context.Context, u User, res *Result, subcluster string) error {
	if res == nil || res.Video == nil {
		return fmt.Errorf("classminer: nil result")
	}
	if err := l.checkSubcluster(subcluster); err != nil {
		return err
	}
	return l.replace(ctx, res.Video.Name, res, subcluster, l.visibleTo(u))
}

// ReplaceVideo mines a video and installs it under its name, superseding
// any existing registration. Mining runs outside the lock, like AddVideo.
func (l *Library) ReplaceVideo(v *Video, subcluster string) (*Result, error) {
	if err := l.checkSubcluster(subcluster); err != nil {
		return nil, err
	}
	res, err := l.analyzer.Analyze(v)
	if err != nil {
		return nil, err
	}
	return res, l.replace(context.Background(), v.Name, res, subcluster, nil)
}

// ReplaceVideoAs is ReplaceVideo with ReplaceResultAs's atomic policy gate
// on the existing registration.
func (l *Library) ReplaceVideoAs(u User, v *Video, subcluster string) (*Result, error) {
	return l.ReplaceVideoAsCtx(context.Background(), u, v, subcluster)
}

// ReplaceVideoAsCtx is ReplaceVideoAs with tracing (see AddVideoCtx).
func (l *Library) ReplaceVideoAsCtx(ctx context.Context, u User, v *Video, subcluster string) (*Result, error) {
	if err := l.checkSubcluster(subcluster); err != nil {
		return nil, err
	}
	sp := trace.StartSpan(ctx, "mine")
	res, err := l.analyzer.Analyze(v)
	sp.End()
	if err != nil {
		return nil, err
	}
	return res, l.replace(ctx, v.Name, res, subcluster, l.visibleTo(u))
}

// BuildIndex (re)builds the hierarchical index over all registered videos
// — the full fit that resets the incremental overlay's staleness. The fit
// runs outside the lock against a snapshot of the entries, so concurrent
// searches keep answering from the previous index until the new one is
// swapped in, and registrations that land *while* the fit runs are caught
// up by inserting them incrementally into the fresh fit before the swap —
// a rebuild is never discarded just because ingest outpaced it. Only a
// removal racing the fit discards it (the entry arrays were compacted
// under it); the caller — typically the coalesced rebuilder — simply
// retries. Concurrent builds are safe: an older fit never overwrites a
// newer one.
func (l *Library) BuildIndex() error {
	return l.BuildIndexCtx(context.Background())
}

// BuildIndexCtx is BuildIndex with tracing: when ctx carries a trace span
// (the rebuilder traces every rebuild), the out-of-lock matrix fit and the
// under-lock catch-up-and-swap each record a child span — the split that
// matters when a rebuild stalls queries (only "swap" runs under the write
// lock).
func (l *Library) BuildIndexCtx(ctx context.Context) error {
	sp := trace.SpanFrom(ctx)
	l.mu.RLock()
	entries := l.entries[:len(l.entries):len(l.entries)]
	// Snapshot the precomputed feature matrix alongside: the capacity-capped
	// view stays valid even if later registrations grow featData, rows past
	// the snapshot are never written concurrently, and a delete or
	// replacement rebuilds both slices into fresh backing arrays
	// (removeLocked) rather than editing the ones this snapshot aliases.
	flen := len(entries) * l.featDim
	feats := &mat.Dense{R: len(entries), C: l.featDim, Data: l.featData[:flen:flen]}
	ver := l.entriesVer
	l.mu.RUnlock()
	if len(entries) == 0 {
		return fmt.Errorf("classminer: no videos registered")
	}
	fit := sp.Start("fit")
	fit.SetInt("entries", int64(len(entries)))
	ix, err := index.BuildMatrix(entries, feats, index.Options{})
	fit.End()
	if err != nil {
		return err
	}
	swap := sp.Start("swap") // includes the write-lock wait
	defer swap.End()
	l.mu.Lock()
	defer l.mu.Unlock()
	if ver < l.ixFitVer {
		return nil // a newer fit already landed; keep it
	}
	if l.lastRemoveVer > ver {
		// A delete or replacement compacted the entry arrays after this fit
		// snapshotted them: the fit describes rows that no longer line up
		// with the library. Discard it; staleness stays flagged and the
		// rebuilder retries against the compacted arrays.
		return nil
	}
	// No removal ran, so l.entries is the snapshot's own backing array,
	// possibly grown: everything past the snapshot is a registration to
	// catch up on.
	caughtUp := true
	for _, e := range l.entries[len(entries):] {
		nix, ierr := ix.Insert(e)
		if ierr != nil {
			caughtUp = false // new concept mid-fit: install the fit, stay stale
			break
		}
		ix = nix
	}
	l.ix = ix
	l.ixFitVer = ver
	if caughtUp {
		l.ixVer = l.entriesVer
	} else {
		l.ixVer = ver
	}
	l.gen++
	return nil
}

// IndexStaleness reports the serving index's incremental-overlay fraction:
// how much of it (entries inserted or masked since the last full fit,
// relative to that fit's size) is approximation on top of the fitted
// structure. 0 means freshly fit or no index; the rebuild budget compares
// against it.
func (l *Library) IndexStaleness() float64 {
	l.mu.RLock()
	defer l.mu.RUnlock()
	if l.ix == nil {
		return 0
	}
	return l.ix.Staleness()
}

// RebuildNeeded reports whether a full index rebuild is warranted: there is
// something to index and either no current index serves (a mutation the
// incremental path could not absorb, or none was ever built) or the
// incremental overlay has outgrown the staleness budget. The serving
// layer's coalesced rebuilder polls this instead of rebuilding per
// mutation.
func (l *Library) RebuildNeeded(budget float64) bool {
	l.mu.RLock()
	defer l.mu.RUnlock()
	if len(l.entries) == 0 {
		return false
	}
	if l.ix == nil || l.entriesVer != l.ixVer {
		return true
	}
	return l.ix.Staleness() > budget
}

// IndexStale reports whether videos were registered after the installed
// index was built (searches then answer from the older snapshot).
func (l *Library) IndexStale() bool {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return l.ix == nil || l.entriesVer != l.ixVer
}

// LibraryStats is a point-in-time snapshot of a library's size and index
// state, the payload of the daemon's /v1/stats endpoint.
type LibraryStats struct {
	Videos       int  `json:"videos"`
	Shots        int  `json:"shots"`
	IndexedShots int  `json:"indexedShots"`
	IndexStale   bool `json:"indexStale"`
	// IndexStaleness is the serving index's incremental-overlay fraction
	// (inserted+removed since the last full fit, relative to that fit);
	// the rebuild budget is compared against it.
	IndexStaleness float64 `json:"indexStaleness"`
	Generation     int64   `json:"generation"`
	// WAL is the durable log's lag since its last checkpoint; nil when the
	// library is not durable. For a sharded library this is the aggregate
	// across shards (summed counters, min generation).
	WAL *WALStats `json:"wal,omitempty"`
	// Shards carries the per-shard breakdown when the stats come from a
	// sharded library (internal/shard); nil for a plain Library.
	Shards []ShardStats `json:"shards,omitempty"`
}

// ShardStats is one shard's slice of a sharded library's stats.
type ShardStats struct {
	Shard int `json:"shard"`
	LibraryStats
}

// Stats returns a consistent snapshot of the library's counters.
func (l *Library) Stats() LibraryStats {
	l.mu.RLock()
	defer l.mu.RUnlock()
	st := LibraryStats{
		Videos:     len(l.videos),
		Shots:      len(l.entries),
		IndexStale: l.ix == nil || l.entriesVer != l.ixVer,
		Generation: l.gen,
	}
	if l.ix != nil {
		st.IndexedShots = l.ix.Size()
		st.IndexStaleness = l.ix.Staleness()
	}
	if l.journal != nil {
		ws := l.journal.Stats()
		st.WAL = &ws
	}
	return st
}

// Allowed reports whether the user may access the given concept path under
// the library's current policy. The serving layer uses it to gate browsing
// endpoints with the same rules that filter search results.
func (l *Library) Allowed(u User, path []string) bool {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return l.policy.Allowed(u, path)
}

// HasSubcluster reports whether name is a valid placement target for
// AddVideo / AddResult (a subcluster-level concept).
func (l *Library) HasSubcluster(name string) bool {
	return l.checkSubcluster(name) == nil
}

// ConceptPath returns the root-exclusive hierarchy path of a concept (e.g.
// ["medical education", "medicine"] for "medicine"), or nil when unknown.
// It is the single source of the path shape policy rules match against.
func (l *Library) ConceptPath(name string) []string {
	n := l.hierarchy.Find(name)
	if n == nil {
		return nil
	}
	return n.Path()
}

// Video returns a registered video's entry, or nil.
func (l *Library) Video(name string) *VideoEntry {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return l.videos[name]
}

// VideoNames lists the registered videos in sorted order.
func (l *Library) VideoNames() []string {
	l.mu.RLock()
	defer l.mu.RUnlock()
	names := make([]string, 0, len(l.videos))
	for name := range l.videos {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// Size returns the number of indexed shots.
func (l *Library) Size() int {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return len(l.entries)
}

// Search runs a query-by-example over the library as the given user: the
// hierarchical index finds the k nearest shots and the access-control
// policy filters what the user may see. The §6.2 cost statistics of the
// index traversal are returned alongside.
func (l *Library) Search(u User, query []float64, k int) ([]SearchHit, SearchStats, error) {
	return l.SearchInto(nil, u, query, k)
}

// SearchInto is Search writing its ranked, policy-filtered hits into dst
// (grown only when capacity is insufficient). A caller that reuses one
// buffer — the serving layer pools them per request — makes the whole
// query path allocation-free. The returned slice aliases dst.
func (l *Library) SearchInto(dst []SearchHit, u User, query []float64, k int) ([]SearchHit, SearchStats, error) {
	return l.SearchIntoCtx(context.Background(), dst, u, query, k)
}

// SearchIntoCtx is SearchInto with tracing: when ctx carries a trace span,
// the index stages (project/scan/rank — see Index.SearchIntoSpans) and the
// policy filter record child spans under one "search" span. Untraced and
// unsampled callers pay nothing — the span lookup on a bare context is a
// nil value read, keeping the zero-alloc query contract.
func (l *Library) SearchIntoCtx(ctx context.Context, dst []SearchHit, u User, query []float64, k int) ([]SearchHit, SearchStats, error) {
	sp := trace.StartSpan(ctx, "search")
	defer sp.End()
	l.mu.RLock()
	defer l.mu.RUnlock()
	if l.ix == nil {
		return nil, SearchStats{}, fmt.Errorf("classminer: index not built (call BuildIndex)")
	}
	hits, stats := l.ix.SearchIntoSpans(dst, query, k, sp)
	fsp := sp.Start("filter")
	hits = access.FilterInPlace(l.policy, u, hits, func(h SearchHit) []string { return h.Entry.Path })
	fsp.End()
	return hits, stats, nil
}

// SearchBatch answers many query-by-example searches in one call: the index
// fans the queries out across cores and the access-control policy filters
// each answer for the user. hits[i] and stats[i] correspond to queries[i].
func (l *Library) SearchBatch(u User, queries [][]float64, k int) ([][]SearchHit, []SearchStats, error) {
	l.mu.RLock()
	defer l.mu.RUnlock()
	if l.ix == nil {
		return nil, nil, fmt.Errorf("classminer: index not built (call BuildIndex)")
	}
	hits, stats := l.ix.SearchBatch(queries, k)
	for i := range hits {
		hits[i] = access.Filter(l.policy, u, hits[i], func(h SearchHit) []string { return h.Entry.Path })
	}
	return hits, stats, nil
}

// SceneRef names one scene of one registered video.
type SceneRef struct {
	VideoName string
	Scene     *Scene
}

// ScenesByEvent answers queries like "show me all patient–doctor dialogs
// within the library": every mined scene of the category the user is
// allowed to see.
func (l *Library) ScenesByEvent(u User, kind EventKind) []SceneRef {
	l.mu.RLock()
	defer l.mu.RUnlock()
	var out []SceneRef
	for name, ve := range l.videos {
		leaf := concept.SceneConcept(ve.Subcluster, kind)
		path := append(l.hierarchy.Find(ve.Subcluster).Path(), leaf)
		if !l.policy.Allowed(u, path) {
			continue
		}
		for _, sc := range ve.Result.Scenes {
			if sc.Event == kind {
				out = append(out, SceneRef{VideoName: name, Scene: sc})
			}
		}
	}
	return out
}

// Save serialises every mined video's metadata (not the media) to w. The
// saved library can be reloaded with LoadLibrary without re-mining.
//
// Only the registration set is snapshotted under the lock; the heavy
// encoding runs outside it (registered Results are immutable), so a
// checkpoint of a large library never stalls searches behind a pending
// writer. The WAL ordering contract survives: the lock acquisition still
// observes every journaled registration, and anything registered later is
// on the log past the checkpoint's cut point anyway.
func (l *Library) Save(w io.Writer) error {
	l.mu.RLock()
	names := make([]string, 0, len(l.videos))
	for name := range l.videos {
		names = append(names, name)
	}
	sort.Strings(names)
	ves := make([]*VideoEntry, len(names))
	pend := make(map[string]wal.Commit, len(l.pendingAck))
	for i, name := range names {
		ves[i] = l.videos[name]
		if c, ok := l.pendingAck[name]; ok {
			pend[name] = c
		}
	}
	l.mu.RUnlock()
	entries := make([]store.SavedLibraryEntry, 0, len(names))
	for i, name := range names {
		if c, ok := pend[name]; ok {
			// The registration is installed but its group commit has not
			// resolved. Wait it out (outside the lock — this can even lead
			// the flush): on success the record is durable and belongs in
			// the snapshot; on failure it was clawed back and the install
			// is being compensated, so the snapshot must not resurrect it.
			if c.Wait() != nil {
				continue
			}
		}
		saved, err := store.EncodeResult(ves[i].Result)
		if err != nil {
			return fmt.Errorf("classminer: saving %q: %w", name, err)
		}
		entries = append(entries, store.SavedLibraryEntry{Subcluster: ves[i].Subcluster, Result: saved})
	}
	return store.WriteLibrary(w, entries)
}

// LoadLibrary reconstructs a library from a stream written by Save and
// rebuilds its index. The analyzer is kept for future AddVideo calls; the
// loaded videos carry mined metadata only (no frames or audio).
func LoadLibrary(r io.Reader, a *Analyzer) (*Library, error) {
	l := NewLibrary(a)
	n, err := l.ImportSnapshot(r, false)
	if err != nil {
		return nil, err
	}
	if n > 0 {
		if err := l.BuildIndex(); err != nil {
			return nil, err
		}
	}
	return l, nil
}

// Recover opens (creating if needed) a durable library rooted at dir: it
// loads the newest checkpoint snapshot, replays the write-ahead log tail
// over it, and attaches the journal so every subsequent registration is
// durable before it is visible. A crashed process therefore restarts with
// exactly the registrations it acknowledged (under SyncAlways; see
// DurableOptions.Sync for the weaker modes).
//
// The recovered index is left stale — call BuildIndex once before serving
// searches. Close the library when done to release the engine.
func Recover(dir string, a *Analyzer, opts DurableOptions) (*Library, error) {
	eng, err := wal.Open(dir, opts)
	if err != nil {
		return nil, err
	}
	l := NewLibrary(a)
	ok := false
	defer func() {
		if !ok {
			eng.Close()
		}
	}()
	if snap := eng.SnapshotPath(); snap != "" {
		f, err := os.Open(snap)
		if err != nil {
			return nil, fmt.Errorf("classminer: opening snapshot: %w", err)
		}
		_, err = l.ImportSnapshot(f, false)
		f.Close()
		if err != nil {
			return nil, fmt.Errorf("classminer: snapshot %s: %w", snap, err)
		}
	}
	// Dead log discovered during replay (a tombstone or replacement whose
	// victim is also on the log) is accumulated locally and handed to the
	// engine once it is attached, so a recovered-but-never-compacted data
	// directory can trigger compaction without waiting for fresh deletes.
	var replayDeadRecs, replayDeadBytes int64
	l.mu.Lock()
	l.deadNote = func(records, bytes int64) {
		replayDeadRecs += records
		replayDeadBytes += bytes
	}
	l.mu.Unlock()
	// Replay reuses one scratch Record and one scratch SavedLibraryEntry
	// across the whole log tail — the per-record work is the decode, and a
	// 10k-record recovery should not also pay 10k envelope re-parses and
	// scratch allocations.
	var rec wal.Record
	var sv store.SavedLibraryEntry
	err = eng.Replay(func(payload []byte) error {
		if err := wal.DecodeRecordInto(&rec, payload); err != nil {
			return fmt.Errorf("classminer: %w", err)
		}
		size := int64(len(payload)) + wal.FrameOverhead
		if rec.Type == wal.RecordTombstone {
			// Delete wins over a straddling checkpointed registration (the
			// video is in the snapshot, its tombstone on the log tail);
			// unknown names are fine — the tombstone itself may straddle a
			// checkpoint that already dropped the video.
			l.remove(rec.Key)
			return nil
		}
		sv = store.SavedLibraryEntry{}
		if err := json.Unmarshal(rec.Payload, &sv); err != nil {
			return fmt.Errorf("classminer: decoding journal record: %w", err)
		}
		res, err := store.DecodeResult(sv.Result)
		if err != nil {
			return fmt.Errorf("classminer: decoding journal record: %w", err)
		}
		name := res.Video.Name
		if rec.Type == wal.RecordReplace {
			if err := l.replace(context.Background(), name, res, sv.Subcluster, nil); err != nil {
				return err
			}
		} else {
			err := l.register(context.Background(), name, res, sv.Subcluster)
			if err != nil && !errors.Is(err, ErrDuplicateVideo) {
				// A duplicate straddles the last checkpoint: it is both in
				// the snapshot and on the log tail, and the snapshot copy
				// won. Anything else is real.
				return err
			}
		}
		// Either way the record is on the live log; a later delete or
		// replacement makes its bytes reclaimable.
		l.setLogSize(name, size)
		return nil
	})
	if err != nil {
		return nil, err
	}
	l.mu.Lock()
	l.journal = eng
	l.deadNote = eng.NoteDead
	l.mu.Unlock()
	eng.SetSource(l.checkpointSource)
	if replayDeadRecs > 0 {
		eng.NoteDead(replayDeadRecs, replayDeadBytes)
	}
	if eng.ReplayDamaged() {
		// The log chain is broken mid-way: records past the damage (and any
		// future appends, which land after them) would be unreachable by
		// the next replay. A checkpoint heals it — the fresh snapshot holds
		// everything just recovered, and the broken segments are pruned.
		if err := eng.Checkpoint(); err != nil {
			return nil, fmt.Errorf("classminer: checkpointing past damaged log: %w", err)
		}
	}
	ok = true
	return l, nil
}

// ImportSnapshot registers every video of a library snapshot (a stream
// written by Save) into l, reporting how many were added. With
// skipExisting, names the library already holds are skipped — the
// one-shot-migration semantics of classminerd's -load — otherwise a
// duplicate is an error. Placement concepts are validated like any other
// registration, and on a durable library every import is journaled. The
// index is left stale; call BuildIndex afterwards.
func (l *Library) ImportSnapshot(r io.Reader, skipExisting bool) (int, error) {
	saved, err := store.ReadLibrary(r)
	if err != nil {
		return 0, err
	}
	n := 0
	for _, sv := range saved.Videos {
		res, err := store.DecodeResult(sv.Result)
		if err != nil {
			return n, err
		}
		if skipExisting && l.Video(res.Video.Name) != nil {
			continue
		}
		if err := l.checkSubcluster(sv.Subcluster); err != nil {
			return n, err
		}
		if err := l.register(context.Background(), res.Video.Name, res, sv.Subcluster); err != nil {
			return n, err
		}
		n++
	}
	return n, nil
}

// Engine exposes the library's write-ahead-log engine, or nil when the
// library is not durable. Replication (internal/repl) ships, pins and seeds
// the engine's log directly; every other caller should stay behind the
// Library API.
func (l *Library) Engine() *wal.Engine {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return l.journal
}

// ApplyRecord applies one replicated log record through the same mutation
// paths the leader used — a follower's index is built by the identical
// incremental Insert/Remove sequence, and the record is journaled into this
// library's own log, so an applying follower is itself durable,
// crash-recoverable, and promotable. Application is idempotent, which is
// what makes re-apply after a crash mid-batch safe: a register whose name
// already exists is a no-op (the first apply won and replay-skip semantics
// say the incumbent stays), a tombstone for an unknown name is a no-op, and
// a replace is an upsert either way. Legacy bare frames arrive as version-0
// registrations, exactly as replay treats them.
func (l *Library) ApplyRecord(ctx context.Context, rec *wal.Record) error {
	switch rec.Type {
	case wal.RecordTombstone:
		if err := l.deleteVideo(ctx, rec.Key, nil); err != nil && !errors.Is(err, ErrUnknownVideo) {
			return err
		}
		return nil
	case wal.RecordRegister, wal.RecordReplace:
		var sv store.SavedLibraryEntry
		if err := json.Unmarshal(rec.Payload, &sv); err != nil {
			return fmt.Errorf("classminer: decoding replicated record: %w", err)
		}
		res, err := store.DecodeResult(sv.Result)
		if err != nil {
			return fmt.Errorf("classminer: decoding replicated record: %w", err)
		}
		if err := l.checkSubcluster(sv.Subcluster); err != nil {
			return err
		}
		if rec.Type == wal.RecordReplace {
			return l.replace(ctx, res.Video.Name, res, sv.Subcluster, nil)
		}
		if err := l.register(ctx, res.Video.Name, res, sv.Subcluster); err != nil && !errors.Is(err, ErrDuplicateVideo) {
			return err
		}
		return nil
	default:
		return fmt.Errorf("classminer: unknown replicated record type %q", rec.Type)
	}
}

// ReseedFromSnapshot converges the library onto a leader checkpoint
// snapshot without wiping: videos absent from the snapshot are tombstoned,
// every snapshot entry is applied as a replacement (an upsert, so entries
// whose content drifted are refreshed too), and all of it flows through the
// normal journaled mutation paths, making the reseed itself crash-safe and
// re-runnable. This is the follower's fallback when its cursor falls behind
// the leader's compaction horizon: the snapshot plus the log tail after it
// is exactly the leader's state. r may be nil — a leader that has never
// checkpointed has an empty snapshot, and the whole history arrives via the
// log instead. Reports how many videos were installed and removed.
func (l *Library) ReseedFromSnapshot(ctx context.Context, r io.Reader) (installed, removed int, err error) {
	var entries []store.SavedLibraryEntry
	if r != nil {
		saved, err := store.ReadLibrary(r)
		if err != nil {
			return 0, 0, err
		}
		entries = saved.Videos
	}
	keep := make(map[string]bool, len(entries))
	for _, sv := range entries {
		if sv.Result != nil {
			keep[sv.Result.VideoName] = true
		}
	}
	for _, name := range l.VideoNames() {
		if keep[name] {
			continue
		}
		if derr := l.deleteVideo(ctx, name, nil); derr != nil && !errors.Is(derr, ErrUnknownVideo) {
			return installed, removed, derr
		}
		removed++
	}
	for _, sv := range entries {
		res, derr := store.DecodeResult(sv.Result)
		if derr != nil {
			return installed, removed, derr
		}
		if derr := l.checkSubcluster(sv.Subcluster); derr != nil {
			return installed, removed, derr
		}
		if derr := l.replace(ctx, res.Video.Name, res, sv.Subcluster, nil); derr != nil {
			return installed, removed, derr
		}
		installed++
	}
	return installed, removed, nil
}

// Durable reports whether registrations are write-ahead logged (the
// library came from Recover).
func (l *Library) Durable() bool {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return l.journal != nil
}

// checkpointSource is the snapshot writer the engine's checkpoints call.
// It is Save plus bookkeeping: once the snapshot is cut, the log records
// it covers are about to be pruned, so their per-name footprints are
// forgotten — a later delete of a checkpointed video costs the log nothing
// (only its tombstone is appended). Registrations that straddle the
// checkpoint lose their entry too, a deliberate undercount: the dead-bytes
// counter is a compaction trigger, and Compact recomputes exact deadness
// from the log itself.
func (l *Library) checkpointSource(w io.Writer) error {
	if err := l.Save(w); err != nil {
		return err
	}
	l.mu.Lock()
	l.logBytes = nil
	l.mu.Unlock()
	return nil
}

// Checkpoint folds the write-ahead log into a fresh snapshot and prunes
// the superseded segments, bounding the next recovery's replay. The
// background checkpointer calls this when the configured lag thresholds
// trip; the daemon's admin endpoint calls it on demand. It is an error on
// a non-durable library.
func (l *Library) Checkpoint() error {
	l.mu.RLock()
	eng := l.journal
	l.mu.RUnlock()
	if eng == nil {
		return fmt.Errorf("classminer: library is not durable")
	}
	return eng.Checkpoint()
}

// Compact rewrites the write-ahead log's sealed segments, dropping
// registrations a later delete or replacement superseded, so recovery
// replays (and checkpoints rewrite) only the live set. The background
// compactor calls this when the dead-bytes threshold trips
// (DurableOptions.CompactBytes); the daemon's admin endpoint calls it on
// demand. It is an error on a non-durable library.
func (l *Library) Compact() (CompactStats, error) {
	l.mu.RLock()
	eng := l.journal
	l.mu.RUnlock()
	if eng == nil {
		return CompactStats{}, fmt.Errorf("classminer: library is not durable")
	}
	return eng.Compact()
}

// WALStats reports the durable log's lag since its last checkpoint. ok is
// false when the library is not durable.
func (l *Library) WALStats() (WALStats, bool) {
	l.mu.RLock()
	eng := l.journal
	l.mu.RUnlock()
	if eng == nil {
		return WALStats{}, false
	}
	return eng.Stats(), true
}

// Close releases the durable engine (final fsync included). It is a no-op
// on a non-durable library; the library must not register videos after.
func (l *Library) Close() error {
	l.mu.RLock()
	eng := l.journal
	l.mu.RUnlock()
	if eng == nil {
		return nil
	}
	return eng.Close()
}
