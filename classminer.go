// Package classminer is a from-scratch Go implementation of ClassMiner —
// the medical video mining framework of Zhu, Aref, Fan, Catlin and
// Elmagarmid, "Medical Video Mining for Efficient Database Indexing,
// Management and Access" (ICDE 2003).
//
// The package offers two entry points:
//
//   - Analyzer mines a single video's content structure (shots → groups →
//     scenes → clustered scenes), mines the three event categories
//     (presentation, dialog, clinical operation) from visual and audio
//     cues, and builds the four-level scalable skimming of §5.
//
//   - Library manages a collection of mined videos behind the paper's
//     hierarchical database model: a concept-derived index with
//     multi-center non-leaf nodes and hash-table leaves (§2, §6.2), and
//     hierarchical multilevel access control.
//
// See DESIGN.md for the system inventory and EXPERIMENTS.md for the
// paper-versus-measured record of every figure and table.
package classminer

import (
	"fmt"
	"io"
	"sort"
	"sync"

	"classminer/internal/access"
	"classminer/internal/concept"
	"classminer/internal/core"
	"classminer/internal/index"
	"classminer/internal/skim"
	"classminer/internal/store"
	"classminer/internal/vidmodel"
)

// Re-exported media and result types. These aliases are the public face of
// the internal model; downstream code only imports this package.
type (
	// Video is a decoded media document (frames + aligned audio).
	Video = vidmodel.Video
	// Frame is a small dense RGB raster.
	Frame = vidmodel.Frame
	// AudioTrack is a mono PCM stream.
	AudioTrack = vidmodel.AudioTrack
	// Shot is the physical unit of §3 Definition 2.
	Shot = vidmodel.Shot
	// Group is the intermediate unit between shots and scenes.
	Group = vidmodel.Group
	// Scene is a collection of semantically related adjacent groups.
	Scene = vidmodel.Scene
	// ClusteredScene groups recurrences of visually similar scenes.
	ClusteredScene = vidmodel.ClusteredScene
	// EventKind is a mined event category.
	EventKind = vidmodel.EventKind
	// Options configures the mining pipeline.
	Options = core.Options
	// Result is the mined content structure of one video.
	Result = core.Result
	// User is an access-control subject.
	User = access.User
	// Clearance is a multilevel-security level.
	Clearance = access.Clearance
	// Rule protects a concept subtree.
	Rule = access.Rule
	// SearchHit is one ranked query result.
	SearchHit = index.Result
	// SearchStats counts the work a search performed (§6.2 cost model).
	SearchStats = index.Stats
	// SkimLevel indexes the four scalable-skimming layers of §5.
	SkimLevel = skim.Level
	// Skim is a built scalable skimming.
	Skim = skim.Skim
)

// The four skimming layers (granularity increases from 4 down to 1).
const (
	SkimLevel1 = skim.Level1
	SkimLevel2 = skim.Level2
	SkimLevel3 = skim.Level3
	SkimLevel4 = skim.Level4
)

// Event categories (§4.3).
const (
	EventUnknown           = vidmodel.EventUnknown
	EventPresentation      = vidmodel.EventPresentation
	EventDialog            = vidmodel.EventDialog
	EventClinicalOperation = vidmodel.EventClinicalOperation
)

// Clearance levels of the built-in lattice.
const (
	Public        = access.Public
	Student       = access.Student
	Nurse         = access.Nurse
	Clinician     = access.Clinician
	Administrator = access.Administrator
)

// Analyzer mines video content structure and events. Construct once with
// NewAnalyzer and reuse across videos (it holds a trained audio classifier).
type Analyzer struct {
	inner *core.Analyzer
}

// NewAnalyzer builds a mining pipeline; the zero Options reproduce the
// paper's published settings.
func NewAnalyzer(opts Options) (*Analyzer, error) {
	inner, err := core.NewAnalyzer(opts)
	if err != nil {
		return nil, err
	}
	return &Analyzer{inner: inner}, nil
}

// Analyze runs the full Fig. 3 pipeline on one video.
func (a *Analyzer) Analyze(v *Video) (*Result, error) { return a.inner.Analyze(v) }

// VideoEntry is a video registered in a Library.
type VideoEntry struct {
	Result     *Result
	Subcluster string // concept hierarchy placement (e.g. "medicine")
}

// Library is the paper's video database: mined videos behind a
// concept-hierarchy index with access control. All methods are safe for
// concurrent use; reads proceed in parallel while AddVideo, Protect and
// BuildIndex serialise.
type Library struct {
	mu        sync.RWMutex
	analyzer  *Analyzer
	hierarchy *concept.Hierarchy
	policy    *access.Policy
	videos    map[string]*VideoEntry
	entries   []*index.Entry
	ix        *index.Index
}

// NewLibrary creates an empty library using the Fig. 2 medical concept
// hierarchy and the given analyzer.
func NewLibrary(a *Analyzer) *Library {
	return &Library{
		analyzer:  a,
		hierarchy: concept.Medical(),
		policy:    access.NewPolicy(),
		videos:    map[string]*VideoEntry{},
	}
}

// Protect adds an access-control rule over a concept subtree.
func (l *Library) Protect(r Rule) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.policy.Add(r)
}

// AddVideo mines a video and registers its shots under the given
// subcluster concept ("medicine", "nursing", "dentistry"). The index is
// invalidated; call BuildIndex after the last AddVideo.
func (l *Library) AddVideo(v *Video, subcluster string) (*Result, error) {
	if l.hierarchy.Find(subcluster) == nil {
		return nil, fmt.Errorf("classminer: unknown subcluster concept %q", subcluster)
	}
	l.mu.RLock()
	_, dup := l.videos[v.Name]
	l.mu.RUnlock()
	if dup {
		return nil, fmt.Errorf("classminer: video %q already registered", v.Name)
	}
	// Mining runs outside the lock: it is the slow part and touches no
	// shared state.
	res, err := l.analyzer.Analyze(v)
	if err != nil {
		return nil, err
	}
	return res, l.register(v.Name, res, subcluster)
}

// register installs a mined result under the lock.
func (l *Library) register(name string, res *Result, subcluster string) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if _, dup := l.videos[name]; dup {
		return fmt.Errorf("classminer: video %q already registered", name)
	}
	l.videos[name] = &VideoEntry{Result: res, Subcluster: subcluster}
	l.entries = append(l.entries, res.IndexEntries(subcluster)...)
	l.ix = nil
	return nil
}

// BuildIndex (re)builds the hierarchical index over all registered videos.
func (l *Library) BuildIndex() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if len(l.entries) == 0 {
		return fmt.Errorf("classminer: no videos registered")
	}
	ix, err := index.Build(l.entries, index.Options{})
	if err != nil {
		return err
	}
	l.ix = ix
	return nil
}

// Video returns a registered video's entry, or nil.
func (l *Library) Video(name string) *VideoEntry {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return l.videos[name]
}

// VideoNames lists the registered videos in sorted order.
func (l *Library) VideoNames() []string {
	l.mu.RLock()
	defer l.mu.RUnlock()
	names := make([]string, 0, len(l.videos))
	for name := range l.videos {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// Size returns the number of indexed shots.
func (l *Library) Size() int {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return len(l.entries)
}

// Search runs a query-by-example over the library as the given user: the
// hierarchical index finds the k nearest shots and the access-control
// policy filters what the user may see. The §6.2 cost statistics of the
// index traversal are returned alongside.
func (l *Library) Search(u User, query []float64, k int) ([]SearchHit, SearchStats, error) {
	l.mu.RLock()
	defer l.mu.RUnlock()
	if l.ix == nil {
		return nil, SearchStats{}, fmt.Errorf("classminer: index not built (call BuildIndex)")
	}
	hits, stats := l.ix.Search(query, k)
	filtered := access.Filter(l.policy, u, hits, func(h SearchHit) []string { return h.Entry.Path })
	return filtered, stats, nil
}

// SceneRef names one scene of one registered video.
type SceneRef struct {
	VideoName string
	Scene     *Scene
}

// ScenesByEvent answers queries like "show me all patient–doctor dialogs
// within the library": every mined scene of the category the user is
// allowed to see.
func (l *Library) ScenesByEvent(u User, kind EventKind) []SceneRef {
	l.mu.RLock()
	defer l.mu.RUnlock()
	var out []SceneRef
	for name, ve := range l.videos {
		leaf := concept.SceneConcept(ve.Subcluster, kind)
		path := []string{"medical education", ve.Subcluster, leaf}
		if !l.policy.Allowed(u, path) {
			continue
		}
		for _, sc := range ve.Result.Scenes {
			if sc.Event == kind {
				out = append(out, SceneRef{VideoName: name, Scene: sc})
			}
		}
	}
	return out
}

// Save serialises every mined video's metadata (not the media) to w. The
// saved library can be reloaded with LoadLibrary without re-mining.
func (l *Library) Save(w io.Writer) error {
	l.mu.RLock()
	defer l.mu.RUnlock()
	names := make([]string, 0, len(l.videos))
	for name := range l.videos {
		names = append(names, name)
	}
	sort.Strings(names)
	entries := make([]store.SavedLibraryEntry, 0, len(names))
	for _, name := range names {
		ve := l.videos[name]
		saved, err := store.EncodeResult(ve.Result)
		if err != nil {
			return fmt.Errorf("classminer: saving %q: %w", name, err)
		}
		entries = append(entries, store.SavedLibraryEntry{Subcluster: ve.Subcluster, Result: saved})
	}
	return store.WriteLibrary(w, entries)
}

// LoadLibrary reconstructs a library from a stream written by Save and
// rebuilds its index. The analyzer is kept for future AddVideo calls; the
// loaded videos carry mined metadata only (no frames or audio).
func LoadLibrary(r io.Reader, a *Analyzer) (*Library, error) {
	saved, err := store.ReadLibrary(r)
	if err != nil {
		return nil, err
	}
	l := NewLibrary(a)
	for _, sv := range saved.Videos {
		res, err := store.DecodeResult(sv.Result)
		if err != nil {
			return nil, err
		}
		if err := l.register(res.Video.Name, res, sv.Subcluster); err != nil {
			return nil, err
		}
	}
	if len(saved.Videos) > 0 {
		if err := l.BuildIndex(); err != nil {
			return nil, err
		}
	}
	return l, nil
}
