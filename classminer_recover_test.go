package classminer

import (
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"classminer/internal/store"
)

// tinyResult fabricates a small mined result (a few shots in one group and
// scene) with deterministic pseudo-random features. It goes through the
// same SavedResult decode path a journal replay uses, so recovered and
// reference libraries are built from identical inputs without paying for
// the mining pipeline 10k times over.
func tinyResult(t testing.TB, name string, seed int64, shots int) *Result {
	t.Helper()
	res, err := store.DecodeResult(tinySaved(name, seed, shots))
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func tinySaved(name string, seed int64, shots int) *store.SavedResult {
	rng := rand.New(rand.NewSource(seed))
	sr := &store.SavedResult{
		Version:     store.FormatVersion,
		VideoName:   name,
		FPS:         25,
		TotalFrames: shots * 50,
	}
	feat := func(n int) []float64 {
		v := make([]float64, n)
		for i := range v {
			v[i] = rng.Float64()
		}
		return v
	}
	group := store.SavedGroup{Index: 0}
	for i := 0; i < shots; i++ {
		sr.Shots = append(sr.Shots, store.SavedShot{
			Index: i, Start: i * 50, End: (i+1)*50 - 1, RepFrame: i * 50,
			Color: feat(8), Texture: feat(4),
		})
		group.Shots = append(group.Shots, i)
	}
	group.RepShots = []int{0}
	sr.Groups = []store.SavedGroup{group}
	sr.Scenes = []store.SavedScene{{Index: 0, Groups: []int{0}, RepGroup: 0}}
	return sr
}

// quietWAL keeps recovery tests silent and auto-checkpointing out of the
// way unless a test opts in.
func quietWAL() DurableOptions {
	return DurableOptions{CheckpointBytes: -1, CheckpointRecords: -1}
}

func searchAll(t testing.TB, l *Library, queries [][]float64, k int) [][]SearchHit {
	t.Helper()
	u := User{Name: "admin", Clearance: Administrator}
	out := make([][]SearchHit, len(queries))
	for i, q := range queries {
		hits, _, err := l.Search(u, q, k)
		if err != nil {
			t.Fatal(err)
		}
		out[i] = hits
	}
	return out
}

func mustSameHits(t testing.TB, got, want [][]SearchHit) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("answered %d queries, want %d", len(got), len(want))
	}
	for qi := range want {
		if len(got[qi]) != len(want[qi]) {
			t.Fatalf("query %d: %d hits vs %d", qi, len(got[qi]), len(want[qi]))
		}
		for hi := range want[qi] {
			g, w := got[qi][hi], want[qi][hi]
			if g.Entry.VideoName != w.Entry.VideoName || g.Entry.Shot.Index != w.Entry.Shot.Index || g.Dist != w.Dist {
				t.Fatalf("query %d hit %d: (%s,%d,%g) vs (%s,%d,%g)", qi, hi,
					g.Entry.VideoName, g.Entry.Shot.Index, g.Dist,
					w.Entry.VideoName, w.Entry.Shot.Index, w.Dist)
			}
		}
	}
}

// fixedQueries derives a deterministic query set from the libraries' own
// feature space.
func fixedQueries(n, dim int, seed int64) [][]float64 {
	rng := rand.New(rand.NewSource(seed))
	out := make([][]float64, n)
	for i := range out {
		q := make([]float64, dim)
		for j := range q {
			q[j] = rng.Float64()
		}
		out[i] = q
	}
	return out
}

// TestRecoverEquivalence is the snapshot+replay equivalence check: a
// durable library abandoned without any shutdown save must recover to
// answer exactly like an in-memory reference library that registered the
// same results. Exercises both the WAL-only boot (no checkpoint ever) and
// the snapshot+tail layout (checkpoint mid-stream).
func TestRecoverEquivalence(t *testing.T) {
	a, err := NewAnalyzer(Options{SkipEvents: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, mode := range []string{"wal-only", "checkpoint+tail"} {
		t.Run(mode, func(t *testing.T) {
			dir := t.TempDir()
			durable, err := Recover(dir, a, quietWAL())
			if err != nil {
				t.Fatal(err)
			}
			reference := NewLibrary(a)
			const videos = 12
			for i := 0; i < videos; i++ {
				name := fmt.Sprintf("vid-%03d", i)
				if err := durable.AddResult(tinyResult(t, name, int64(i), 3+i%4), "medicine"); err != nil {
					t.Fatal(err)
				}
				if err := reference.AddResult(tinyResult(t, name, int64(i), 3+i%4), "medicine"); err != nil {
					t.Fatal(err)
				}
				if mode == "checkpoint+tail" && i == videos/2 {
					if err := durable.Checkpoint(); err != nil {
						t.Fatal(err)
					}
				}
			}
			// Crash: no shutdown save, no checkpoint. Close here only
			// releases the data-dir lock the way process death would —
			// under SyncAlways it writes nothing, so the on-disk state is
			// byte-identical to a SIGKILL and everything must come back
			// from the data dir alone.
			if err := durable.Close(); err != nil {
				t.Fatal(err)
			}

			recovered, err := Recover(dir, a, quietWAL())
			if err != nil {
				t.Fatal(err)
			}
			defer recovered.Close()
			if got, want := recovered.Stats().Videos, reference.Stats().Videos; got != want {
				t.Fatalf("recovered %d videos, want %d", got, want)
			}
			if err := recovered.BuildIndex(); err != nil {
				t.Fatal(err)
			}
			if err := reference.BuildIndex(); err != nil {
				t.Fatal(err)
			}
			queries := fixedQueries(10, 12, 99)
			mustSameHits(t, searchAll(t, recovered, queries, 5), searchAll(t, reference, queries, 5))
		})
	}
}

// TestRecoverDeleteReplaceEquivalence drives random interleavings of
// add/delete/replace through a durable library and an in-memory reference,
// checkpoints somewhere in the middle of the stream, crashes, and demands
// the recovered library answer exactly like the reference — the lifecycle
// analogue of TestRecoverEquivalence. Register records that straddle the
// checkpoint must dedupe, and tombstone/replace records that straddle it
// must win over the snapshot copy.
func TestRecoverDeleteReplaceEquivalence(t *testing.T) {
	a, err := NewAnalyzer(Options{SkipEvents: true})
	if err != nil {
		t.Fatal(err)
	}
	for seed := int64(1); seed <= 4; seed++ {
		t.Run(fmt.Sprintf("seed-%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			dir := t.TempDir()
			opts := quietWAL()
			opts.SegmentBytes = 4 << 10 // several segments per run
			durable, err := Recover(dir, a, opts)
			if err != nil {
				t.Fatal(err)
			}
			reference := NewLibrary(a)

			var names []string
			next := 0
			const ops = 60
			ckptAt := 20 + rng.Intn(20)
			for op := 0; op < ops; op++ {
				switch {
				case len(names) == 0 || rng.Float64() < 0.5:
					name := fmt.Sprintf("vid-%03d", next)
					next++
					res := int64(next)
					if err := durable.AddResult(tinyResult(t, name, res, 2+rng.Intn(3)), "medicine"); err != nil {
						t.Fatal(err)
					}
					if err := reference.AddResult(tinyResult(t, name, res, len(durable.Video(name).Result.Shots)), "medicine"); err != nil {
						t.Fatal(err)
					}
					names = append(names, name)
				case rng.Float64() < 0.5:
					victim := rng.Intn(len(names))
					name := names[victim]
					if err := durable.DeleteVideo(name); err != nil {
						t.Fatal(err)
					}
					if err := reference.DeleteVideo(name); err != nil {
						t.Fatal(err)
					}
					names = append(names[:victim], names[victim+1:]...)
				default:
					name := names[rng.Intn(len(names))]
					res := int64(1000 + op)
					shots := 2 + rng.Intn(3)
					if err := durable.ReplaceResult(tinyResult(t, name, res, shots), "medicine"); err != nil {
						t.Fatal(err)
					}
					if err := reference.ReplaceResult(tinyResult(t, name, res, shots), "medicine"); err != nil {
						t.Fatal(err)
					}
				}
				if op == ckptAt {
					if err := durable.Checkpoint(); err != nil {
						t.Fatal(err)
					}
				}
			}
			// Crash without any shutdown save (see TestRecoverEquivalence).
			if err := durable.Close(); err != nil {
				t.Fatal(err)
			}

			recovered, err := Recover(dir, a, opts)
			if err != nil {
				t.Fatal(err)
			}
			defer recovered.Close()
			gotNames, wantNames := recovered.VideoNames(), reference.VideoNames()
			if fmt.Sprint(gotNames) != fmt.Sprint(wantNames) {
				t.Fatalf("recovered videos %v, want %v", gotNames, wantNames)
			}
			for _, name := range wantNames {
				g, w := recovered.Video(name), reference.Video(name)
				if len(g.Result.Shots) != len(w.Result.Shots) {
					t.Fatalf("video %q recovered with %d shots, want %d (stale replacement?)",
						name, len(g.Result.Shots), len(w.Result.Shots))
				}
			}
			if len(wantNames) == 0 {
				return
			}
			if err := recovered.BuildIndex(); err != nil {
				t.Fatal(err)
			}
			if err := reference.BuildIndex(); err != nil {
				t.Fatal(err)
			}
			queries := fixedQueries(8, 12, seed)
			mustSameHits(t, searchAll(t, recovered, queries, 5), searchAll(t, reference, queries, 5))
		})
	}
}

// TestRecoverTombstoneStraddlesCheckpoint pins the "delete wins" rule: a
// video registered before a checkpoint lives in the snapshot; its
// tombstone (and a replaced sibling's replace record) land on the log
// tail. Replay loads the snapshot copy and must still apply both.
func TestRecoverTombstoneStraddlesCheckpoint(t *testing.T) {
	a, err := NewAnalyzer(Options{SkipEvents: true})
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	lib, err := Recover(dir, a, quietWAL())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if err := lib.AddResult(tinyResult(t, fmt.Sprintf("v%d", i), int64(i), 3), "medicine"); err != nil {
			t.Fatal(err)
		}
	}
	if err := lib.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	// Both mutations straddle the checkpoint: victims in the snapshot,
	// records on the tail.
	if err := lib.DeleteVideo("v1"); err != nil {
		t.Fatal(err)
	}
	if err := lib.ReplaceResult(tinyResult(t, "v2", 55, 5), "medicine"); err != nil {
		t.Fatal(err)
	}
	if err := lib.Close(); err != nil {
		t.Fatal(err)
	}

	recovered, err := Recover(dir, a, quietWAL())
	if err != nil {
		t.Fatal(err)
	}
	defer recovered.Close()
	if recovered.Video("v1") != nil {
		t.Fatal("tombstone lost: checkpointed registration resurrected")
	}
	if got := recovered.Stats().Videos; got != 3 {
		t.Fatalf("recovered %d videos, want 3", got)
	}
	ve := recovered.Video("v2")
	if ve == nil || len(ve.Result.Shots) != 5 {
		t.Fatalf("replace record lost: v2 = %+v", ve)
	}
}

// TestRecoverEmptyDir boots a durable library from a directory that has
// never seen a record: zero snapshots, an empty log.
func TestRecoverEmptyDir(t *testing.T) {
	a, err := NewAnalyzer(Options{SkipEvents: true})
	if err != nil {
		t.Fatal(err)
	}
	lib, err := Recover(t.TempDir(), a, quietWAL())
	if err != nil {
		t.Fatal(err)
	}
	defer lib.Close()
	if !lib.Durable() {
		t.Fatal("recovered library is not durable")
	}
	if st := lib.Stats(); st.Videos != 0 || st.WAL == nil || st.WAL.Records != 0 {
		t.Fatalf("empty-dir stats = %+v", st)
	}
	if err := lib.AddResult(tinyResult(t, "first", 1, 4), "medicine"); err != nil {
		t.Fatal(err)
	}
	if st := lib.Stats(); st.WAL.Records != 1 {
		t.Fatalf("WAL lag after one registration = %+v", st.WAL)
	}
}

// TestRecoverSkipsCheckpointStraddlers registers, checkpoints, and crashes
// without closing: the final registrations live on the log tail while
// earlier ones are in the snapshot. A record present in both (appended
// while a checkpoint snapshot was cut) must register once, not error.
func TestRecoverDuplicateTolerance(t *testing.T) {
	a, err := NewAnalyzer(Options{SkipEvents: true})
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	lib, err := Recover(dir, a, quietWAL())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if err := lib.AddResult(tinyResult(t, fmt.Sprintf("v%d", i), int64(i), 3), "medicine"); err != nil {
			t.Fatal(err)
		}
	}
	if err := lib.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	// Duplicate registration is refused and, critically, never journaled:
	// a WAL record of a failed registration would resurrect it on replay.
	if err := lib.AddResult(tinyResult(t, "v0", 0, 3), "medicine"); !errors.Is(err, ErrDuplicateVideo) {
		t.Fatalf("duplicate AddResult: %v, want ErrDuplicateVideo", err)
	}
	if err := lib.AddResult(tinyResult(t, "tail", 77, 3), "medicine"); err != nil {
		t.Fatal(err)
	}
	if err := lib.Close(); err != nil {
		t.Fatal(err)
	}

	recovered, err := Recover(dir, a, quietWAL())
	if err != nil {
		t.Fatal(err)
	}
	defer recovered.Close()
	if got := recovered.Stats().Videos; got != 5 {
		t.Fatalf("recovered %d videos, want 5", got)
	}
	if recovered.Video("tail") == nil {
		t.Fatal("log-tail registration lost")
	}
}

// TestRecoverTornJournalTail cuts the last journal record mid-frame (the
// on-disk signature of a crash mid-append) and verifies recovery keeps
// every earlier registration and drops only the torn one.
func TestRecoverTornJournalTail(t *testing.T) {
	a, err := NewAnalyzer(Options{SkipEvents: true})
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	lib, err := Recover(dir, a, quietWAL())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := lib.AddResult(tinyResult(t, fmt.Sprintf("v%d", i), int64(i), 3), "medicine"); err != nil {
			t.Fatal(err)
		}
	}
	if err := lib.Close(); err != nil {
		t.Fatal(err)
	}

	segs, err := filepath.Glob(filepath.Join(dir, "wal-*.log"))
	if err != nil || len(segs) == 0 {
		t.Fatalf("no segments: %v %v", segs, err)
	}
	last := segs[len(segs)-1]
	fi, err := os.Stat(last)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(last, fi.Size()-7); err != nil {
		t.Fatal(err)
	}

	recovered, err := Recover(dir, a, quietWAL())
	if err != nil {
		t.Fatal(err)
	}
	defer recovered.Close()
	if got := recovered.Stats().Videos; got != 2 {
		t.Fatalf("recovered %d videos, want 2 (torn third dropped)", got)
	}
	if recovered.Video("v2") != nil {
		t.Fatal("torn registration resurrected")
	}
	// The repaired log accepts the registration again.
	if err := recovered.AddResult(tinyResult(t, "v2", 2, 3), "medicine"); err != nil {
		t.Fatal(err)
	}
}

// TestRecoverHealsDamagedChain corrupts a sealed mid-chain WAL segment and
// verifies Recover checkpoints past the damage, so registrations made
// after the damaged recovery survive the *next* crash instead of being
// stranded behind the broken segment.
func TestRecoverHealsDamagedChain(t *testing.T) {
	a, err := NewAnalyzer(Options{SkipEvents: true})
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	opts := quietWAL()
	opts.SegmentBytes = 1 << 10 // force several segments
	lib, err := Recover(dir, a, opts)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		if err := lib.AddResult(tinyResult(t, fmt.Sprintf("v%d", i), int64(i), 3), "medicine"); err != nil {
			t.Fatal(err)
		}
	}
	if err := lib.Close(); err != nil {
		t.Fatal(err)
	}
	segs, err := filepath.Glob(filepath.Join(dir, "wal-*.log"))
	if err != nil || len(segs) < 3 {
		t.Fatalf("need >= 3 segments, got %v (%v)", segs, err)
	}
	raw, err := os.ReadFile(segs[1])
	if err != nil {
		t.Fatal(err)
	}
	raw[16] ^= 0x01
	if err := os.WriteFile(segs[1], raw, 0o644); err != nil {
		t.Fatal(err)
	}

	healed, err := Recover(dir, a, opts)
	if err != nil {
		t.Fatal(err)
	}
	partial := healed.Stats().Videos
	if partial == 0 || partial >= 8 {
		t.Fatalf("damaged recovery yielded %d videos, want a strict prefix", partial)
	}
	if ws, _ := healed.WALStats(); ws.Generation == 0 {
		t.Fatal("Recover did not checkpoint past the damaged chain")
	}
	if err := healed.AddResult(tinyResult(t, "post-damage", 99, 3), "medicine"); err != nil {
		t.Fatal(err)
	}
	// Crash again (Close releases the dir lock; writes nothing — see
	// TestRecoverEquivalence).
	if err := healed.Close(); err != nil {
		t.Fatal(err)
	}

	again, err := Recover(dir, a, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer again.Close()
	if got := again.Stats().Videos; got != partial+1 {
		t.Fatalf("second recovery has %d videos, want %d", got, partial+1)
	}
	if again.Video("post-damage") == nil {
		t.Fatal("post-damage registration stranded behind the broken segment")
	}
}

// BenchmarkRecover10k measures crash recovery of 10_000 journaled
// registrations (the ISSUE 3 acceptance bar is < 2s). Setup journals the
// registrations once with fsync off (bulk load); each iteration then
// replays the whole log into a fresh library.
func BenchmarkRecover10k(b *testing.B) {
	a, err := NewAnalyzer(Options{SkipEvents: true})
	if err != nil {
		b.Fatal(err)
	}
	dir := b.TempDir()
	opts := quietWAL()
	opts.Sync = SyncNever
	opts.SegmentBytes = 64 << 20
	lib, err := Recover(dir, a, opts)
	if err != nil {
		b.Fatal(err)
	}
	const n = 10_000
	for i := 0; i < n; i++ {
		if err := lib.AddResult(tinyResult(b, fmt.Sprintf("vid-%05d", i), int64(i), 2), "medicine"); err != nil {
			b.Fatal(err)
		}
	}
	if err := lib.Close(); err != nil {
		b.Fatal(err)
	}

	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		recovered, err := Recover(dir, a, opts)
		if err != nil {
			b.Fatal(err)
		}
		if got := recovered.Stats().Videos; got != n {
			b.Fatalf("recovered %d videos, want %d", got, n)
		}
		recovered.Close()
	}
}
