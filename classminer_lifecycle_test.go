package classminer

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"classminer/internal/store"
	"classminer/internal/wal"
)

// TestDeleteVideo exercises the in-memory delete path: entries and the
// flat feature matrix shrink, the generation advances, the rebuilt index
// stops ranking the deleted shots, and unknown names are refused.
func TestDeleteVideo(t *testing.T) {
	a, err := NewAnalyzer(Options{SkipEvents: true})
	if err != nil {
		t.Fatal(err)
	}
	lib := NewLibrary(a)
	for i := 0; i < 3; i++ {
		if err := lib.AddResult(tinyResult(t, fmt.Sprintf("v%d", i), int64(i), 3+i), "medicine"); err != nil {
			t.Fatal(err)
		}
	}
	if err := lib.BuildIndex(); err != nil {
		t.Fatal(err)
	}
	gen := lib.Generation()
	shotsBefore := lib.Size()

	if err := lib.DeleteVideo("nope"); !errors.Is(err, ErrUnknownVideo) {
		t.Fatalf("deleting unknown video: %v, want ErrUnknownVideo", err)
	}
	if err := lib.DeleteVideo("v1"); err != nil {
		t.Fatal(err)
	}
	if lib.Video("v1") != nil {
		t.Fatal("deleted video still registered")
	}
	if lib.Generation() == gen {
		t.Fatal("delete did not advance the generation")
	}
	if got, want := lib.Size(), shotsBefore-4; got != want {
		t.Fatalf("entries after delete = %d, want %d", got, want)
	}
	// Incremental maintenance masks the deleted shots out of the serving
	// index immediately — no rebuild, no staleness window.
	if lib.IndexStale() {
		t.Fatal("index stale after delete (incremental removal should keep it current)")
	}
	u := User{Name: "admin", Clearance: Administrator}
	searchMisses := func(victim string) {
		t.Helper()
		for _, q := range fixedQueries(8, 12, 7) {
			hits, _, err := lib.Search(u, q, 10)
			if err != nil {
				t.Fatal(err)
			}
			for _, h := range hits {
				if h.Entry.VideoName == victim {
					t.Fatalf("search returned deleted video %q", victim)
				}
			}
		}
	}
	searchMisses("v1")
	// A full refit over the compacted arrays answers the same way.
	if err := lib.BuildIndex(); err != nil {
		t.Fatal(err)
	}
	searchMisses("v1")

	// Deleting the rest empties the library: the index is dropped rather
	// than serving ghosts, and searches report it unbuilt.
	if err := lib.DeleteVideo("v0"); err != nil {
		t.Fatal(err)
	}
	if err := lib.DeleteVideo("v2"); err != nil {
		t.Fatal(err)
	}
	if _, _, err := lib.Search(u, fixedQueries(1, 12, 7)[0], 5); err == nil {
		t.Fatal("search on an emptied library succeeded")
	}
	// An emptied library no longer constrains feature dimensionality: the
	// learned dimension left with the registrations that taught it.
	odd := tinySaved("odd-dims", 9, 2)
	for i := range odd.Shots {
		odd.Shots[i].Color = odd.Shots[i].Color[:6]
		odd.Shots[i].Texture = odd.Shots[i].Texture[:3]
	}
	oddRes, err := store.DecodeResult(odd)
	if err != nil {
		t.Fatal(err)
	}
	if err := lib.AddResult(oddRes, "medicine"); err != nil {
		t.Fatalf("emptied library rejected a different dimensionality: %v", err)
	}
	if err := lib.DeleteVideo("odd-dims"); err != nil {
		t.Fatal(err)
	}
	// And the library accepts registrations again.
	if err := lib.AddResult(tinyResult(t, "fresh", 42, 3), "medicine"); err != nil {
		t.Fatal(err)
	}
	if err := lib.BuildIndex(); err != nil {
		t.Fatal(err)
	}
}

// TestDeleteVideoAsPolicyGate: DeleteVideoAs refuses users the policy
// hides the video's subcluster from, atomically with the removal.
func TestDeleteVideoAsPolicyGate(t *testing.T) {
	a, err := NewAnalyzer(Options{SkipEvents: true})
	if err != nil {
		t.Fatal(err)
	}
	lib := NewLibrary(a)
	if err := lib.AddResult(tinyResult(t, "guarded", 1, 3), "medicine"); err != nil {
		t.Fatal(err)
	}
	lib.Protect(Rule{Concept: "medicine", MinClearance: Clinician})
	nurse := User{Name: "n", Clearance: Nurse}
	if err := lib.DeleteVideoAs(nurse, "guarded"); !errors.Is(err, ErrForbidden) {
		t.Fatalf("nurse delete = %v, want ErrForbidden", err)
	}
	if lib.Video("guarded") == nil {
		t.Fatal("refused delete still removed the video")
	}
	doc := User{Name: "d", Clearance: Clinician}
	if err := lib.DeleteVideoAs(doc, "guarded"); err != nil {
		t.Fatalf("clinician delete = %v", err)
	}
	if err := lib.DeleteVideoAs(doc, "guarded"); !errors.Is(err, ErrUnknownVideo) {
		t.Fatalf("second delete = %v, want ErrUnknownVideo", err)
	}
}

// TestReplaceResultAsPolicyGate: superseding destroys the old registration,
// so ReplaceResultAs is gated exactly like DeleteVideoAs — on the existing
// video's subcluster, atomically with the swap. Absent names are ungated
// (nothing is destroyed).
func TestReplaceResultAsPolicyGate(t *testing.T) {
	a, err := NewAnalyzer(Options{SkipEvents: true})
	if err != nil {
		t.Fatal(err)
	}
	lib := NewLibrary(a)
	if err := lib.AddResult(tinyResult(t, "guarded", 1, 4), "medicine"); err != nil {
		t.Fatal(err)
	}
	lib.Protect(Rule{Concept: "medicine", MinClearance: Clinician})
	nurse := User{Name: "n", Clearance: Nurse}
	if err := lib.ReplaceResultAs(nurse, tinyResult(t, "guarded", 2, 2), "medicine"); !errors.Is(err, ErrForbidden) {
		t.Fatalf("nurse replace = %v, want ErrForbidden", err)
	}
	if got := len(lib.Video("guarded").Result.Shots); got != 4 {
		t.Fatalf("refused replace still swapped the video (%d shots)", got)
	}
	if err := lib.ReplaceResultAs(nurse, tinyResult(t, "fresh", 3, 2), "nursing"); err != nil {
		t.Fatalf("gated replace of an absent name = %v, want fresh registration", err)
	}
	doc := User{Name: "d", Clearance: Clinician}
	if err := lib.ReplaceResultAs(doc, tinyResult(t, "guarded", 4, 2), "medicine"); err != nil {
		t.Fatalf("clinician replace = %v", err)
	}
	if got := len(lib.Video("guarded").Result.Shots); got != 2 {
		t.Fatalf("allowed replace did not install (%d shots)", got)
	}
}

// TestReplaceResult verifies upsert semantics: replacing an existing video
// swaps its content (shot count changes, searches see the new shots), and
// replacing an absent name registers it fresh.
func TestReplaceResult(t *testing.T) {
	a, err := NewAnalyzer(Options{SkipEvents: true})
	if err != nil {
		t.Fatal(err)
	}
	lib := NewLibrary(a)
	if err := lib.AddResult(tinyResult(t, "proc", 1, 6), "medicine"); err != nil {
		t.Fatal(err)
	}
	if got := len(lib.Video("proc").Result.Shots); got != 6 {
		t.Fatalf("original has %d shots, want 6", got)
	}
	if err := lib.ReplaceResult(tinyResult(t, "proc", 2, 3), "nursing"); err != nil {
		t.Fatal(err)
	}
	ve := lib.Video("proc")
	if ve == nil || len(ve.Result.Shots) != 3 || ve.Subcluster != "nursing" {
		t.Fatalf("replacement not installed: %+v", ve)
	}
	if got := lib.Size(); got != 3 {
		t.Fatalf("entries after replace = %d, want 3", got)
	}
	// Upsert on an absent name.
	if err := lib.ReplaceResult(tinyResult(t, "new", 3, 2), "medicine"); err != nil {
		t.Fatal(err)
	}
	if lib.Video("new") == nil {
		t.Fatal("replace of an absent name did not register it")
	}
	// Unknown subcluster still refused.
	if err := lib.ReplaceResult(tinyResult(t, "bad", 4, 2), "astrology"); err == nil {
		t.Fatal("replace into an unknown subcluster succeeded")
	}
}

// TestReplaceSoleVideoNewDims: replacing the library's only video with a
// result of a different feature dimensionality must succeed, exactly like
// the delete-then-add it is equivalent to (the victim's dimensionality
// leaves with it).
func TestReplaceSoleVideoNewDims(t *testing.T) {
	a, err := NewAnalyzer(Options{SkipEvents: true})
	if err != nil {
		t.Fatal(err)
	}
	lib := NewLibrary(a)
	if err := lib.AddResult(tinyResult(t, "solo", 1, 3), "medicine"); err != nil {
		t.Fatal(err)
	}
	if err := lib.BuildIndex(); err != nil {
		t.Fatal(err)
	}
	u := User{Name: "admin", Clearance: Administrator}
	// A same-dim sole replace keeps the old index serving (stale), per the
	// replace contract.
	if err := lib.ReplaceResult(tinyResult(t, "solo", 7, 2), "medicine"); err != nil {
		t.Fatal(err)
	}
	if _, _, err := lib.Search(u, make([]float64, 12), 3); err != nil {
		t.Fatalf("same-dim replace stopped the old index serving: %v", err)
	}
	odd := tinySaved("solo", 2, 2)
	for i := range odd.Shots {
		odd.Shots[i].Color = odd.Shots[i].Color[:6]
		odd.Shots[i].Texture = odd.Shots[i].Texture[:3]
	}
	oddRes, err := store.DecodeResult(odd)
	if err != nil {
		t.Fatal(err)
	}
	if err := lib.ReplaceResult(oddRes, "medicine"); err != nil {
		t.Fatalf("replacing the sole video with new dims: %v", err)
	}
	// The dimensionality changed: the old index must NOT keep serving —
	// a 9-dim query against a 12-dim index would panic projection. The
	// index is down until the next BuildIndex, like after a delete.
	if _, _, err := lib.Search(u, make([]float64, 9), 3); err == nil {
		t.Fatal("search served an index of the wrong dimensionality")
	}
	if err := lib.BuildIndex(); err != nil {
		t.Fatal(err)
	}
	if _, _, err := lib.Search(u, make([]float64, 9), 3); err != nil {
		t.Fatalf("search after rebuild: %v", err)
	}
	// A second 9-dim video pins the dimensionality again: now a 12-dim
	// replacement of either video must be refused (the other one still
	// constrains the library).
	other := tinySaved("other", 5, 2)
	for i := range other.Shots {
		other.Shots[i].Color = other.Shots[i].Color[:6]
		other.Shots[i].Texture = other.Shots[i].Texture[:3]
	}
	otherRes, err := store.DecodeResult(other)
	if err != nil {
		t.Fatal(err)
	}
	if err := lib.AddResult(otherRes, "medicine"); err != nil {
		t.Fatal(err)
	}
	if err := lib.ReplaceResult(tinyResult(t, "solo", 3, 2), "medicine"); err == nil {
		t.Fatal("12-dim replace accepted while another 9-dim video pins the library")
	}
}

// TestDeleteEmptyFencesStaleBuild pins the copy-on-write fence: once a
// delete empties the library, a BuildIndex snapshotted before that delete
// must be refused at the swap — otherwise it would reinstall an index of
// deleted entries that no future BuildIndex (which errors on empty) could
// ever replace.
func TestDeleteEmptyFencesStaleBuild(t *testing.T) {
	a, err := NewAnalyzer(Options{SkipEvents: true})
	if err != nil {
		t.Fatal(err)
	}
	lib := NewLibrary(a)
	for i := 0; i < 2; i++ {
		if err := lib.AddResult(tinyResult(t, fmt.Sprintf("v%d", i), int64(i), 3), "medicine"); err != nil {
			t.Fatal(err)
		}
	}
	// The version an in-flight BuildIndex would have snapshotted now.
	lib.mu.RLock()
	staleVer := lib.entriesVer
	lib.mu.RUnlock()
	if err := lib.DeleteVideo("v0"); err != nil {
		t.Fatal(err)
	}
	if err := lib.DeleteVideo("v1"); err != nil {
		t.Fatal(err)
	}
	lib.mu.RLock()
	defer lib.mu.RUnlock()
	if staleVer >= lib.ixVer {
		t.Fatalf("swap guard would accept a pre-delete build (staleVer %d >= ixVer %d)", staleVer, lib.ixVer)
	}
	if lib.ix != nil {
		t.Fatal("emptied library still holds an index")
	}
}

// sealedWALBytes sums the sizes of dir's sealed segments (all but the
// highest-numbered one, which is active).
func sealedWALBytes(t testing.TB, dir string) int64 {
	t.Helper()
	segs, err := filepath.Glob(filepath.Join(dir, "wal-*.log"))
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) == 0 {
		return 0
	}
	var total int64
	for _, seg := range segs[:len(segs)-1] {
		fi, err := os.Stat(seg)
		if err != nil {
			t.Fatal(err)
		}
		total += fi.Size()
	}
	return total
}

// TestCompactionShrinksLog is the acceptance bar: register 1000 videos,
// delete or replace 50% of them, and a triggered compaction must shrink
// the sealed-segment bytes by at least 40% while Recover replays only the
// live records and answers exactly like a reference library that performed
// the same mutations in memory.
func TestCompactionShrinksLog(t *testing.T) {
	if testing.Short() {
		t.Skip("1k-video workload")
	}
	a, err := NewAnalyzer(Options{SkipEvents: true})
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	opts := quietWAL()
	opts.Sync = SyncNever
	opts.SegmentBytes = 32 << 10
	opts.CompactBytes = -1 // triggered explicitly below
	lib, err := Recover(dir, a, opts)
	if err != nil {
		t.Fatal(err)
	}
	reference := NewLibrary(a)

	const (
		videos   = 1000
		deletes  = 300 // victims 0..299
		replaces = 200 // victims 300..499
	)
	name := func(i int) string { return fmt.Sprintf("vid-%04d", i) }
	for i := 0; i < videos; i++ {
		res := tinyResult(t, name(i), int64(i), 2)
		if err := lib.AddResult(res, "medicine"); err != nil {
			t.Fatal(err)
		}
		if err := reference.AddResult(tinyResult(t, name(i), int64(i), 2), "medicine"); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < deletes; i++ {
		if err := lib.DeleteVideo(name(i)); err != nil {
			t.Fatal(err)
		}
		if err := reference.DeleteVideo(name(i)); err != nil {
			t.Fatal(err)
		}
	}
	for i := deletes; i < deletes+replaces; i++ {
		if err := lib.ReplaceResult(tinyResult(t, name(i), int64(10000+i), 1), "medicine"); err != nil {
			t.Fatal(err)
		}
		if err := reference.ReplaceResult(tinyResult(t, name(i), int64(10000+i), 1), "medicine"); err != nil {
			t.Fatal(err)
		}
	}

	before := sealedWALBytes(t, dir)
	cs, err := lib.Compact()
	if err != nil {
		t.Fatal(err)
	}
	after := sealedWALBytes(t, dir)
	if cs.RecordsDropped != deletes+replaces {
		t.Fatalf("compaction dropped %d records, want %d", cs.RecordsDropped, deletes+replaces)
	}
	shrink := float64(before-after) / float64(before)
	t.Logf("sealed bytes %d -> %d (%.1f%% shrink)", before, after, 100*shrink)
	if shrink < 0.40 {
		t.Fatalf("sealed bytes shrank %d -> %d (%.1f%%), want >= 40%%", before, after, 100*shrink)
	}
	// Crash: no shutdown checkpoint (Close only releases the lock under
	// SyncNever after the final fsync — the log is what recovery gets).
	if err := lib.Close(); err != nil {
		t.Fatal(err)
	}

	recovered, err := Recover(dir, a, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer recovered.Close()
	// Only live records remain: the untouched registers, the tombstones,
	// and the replacement records.
	wantLive := int64(videos - deletes - replaces + deletes + replaces)
	ws, ok := recovered.WALStats()
	if !ok || ws.Records != wantLive {
		t.Fatalf("recovered replay saw %d records, want %d (live only)", ws.Records, wantLive)
	}
	if got, want := recovered.Stats().Videos, videos-deletes; got != want {
		t.Fatalf("recovered %d videos, want %d", got, want)
	}
	if err := recovered.BuildIndex(); err != nil {
		t.Fatal(err)
	}
	if err := reference.BuildIndex(); err != nil {
		t.Fatal(err)
	}
	queries := fixedQueries(6, 12, 99)
	mustSameHits(t, searchAll(t, recovered, queries, 10), searchAll(t, reference, queries, 10))
}

// TestRecoverLegacyDataDir proves the compatibility promise: a data
// directory written before typed record envelopes existed — bare
// store.SavedLibraryEntry frames on the log — recovers byte-identically to
// a library that registered the same results directly (same snapshot
// bytes, same search answers).
func TestRecoverLegacyDataDir(t *testing.T) {
	a, err := NewAnalyzer(Options{SkipEvents: true})
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	// Fabricate a pre-envelope data dir: raw legacy frames straight into
	// the engine, exactly as the previous release's register wrote them.
	eng, err := wal.Open(dir, wal.Options{Sync: wal.SyncNever, CheckpointBytes: -1, CheckpointRecords: -1})
	if err != nil {
		t.Fatal(err)
	}
	reference := NewLibrary(a)
	const videos = 6
	for i := 0; i < videos; i++ {
		name := fmt.Sprintf("legacy-%02d", i)
		saved := tinySaved(name, int64(i), 3+i%3)
		frame, err := json.Marshal(store.SavedLibraryEntry{Subcluster: "medicine", Result: saved})
		if err != nil {
			t.Fatal(err)
		}
		if err := eng.Append(frame); err != nil {
			t.Fatal(err)
		}
		if err := reference.AddResult(tinyResult(t, name, int64(i), 3+i%3), "medicine"); err != nil {
			t.Fatal(err)
		}
	}
	if err := eng.Close(); err != nil {
		t.Fatal(err)
	}

	recovered, err := Recover(dir, a, quietWAL())
	if err != nil {
		t.Fatal(err)
	}
	defer recovered.Close()
	if got := recovered.Stats().Videos; got != videos {
		t.Fatalf("recovered %d videos from legacy frames, want %d", got, videos)
	}
	var gotSave, wantSave bytes.Buffer
	if err := recovered.Save(&gotSave); err != nil {
		t.Fatal(err)
	}
	if err := reference.Save(&wantSave); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(gotSave.Bytes(), wantSave.Bytes()) {
		t.Fatal("legacy recovery is not byte-identical to direct registration")
	}
	if err := recovered.BuildIndex(); err != nil {
		t.Fatal(err)
	}
	if err := reference.BuildIndex(); err != nil {
		t.Fatal(err)
	}
	queries := fixedQueries(8, 12, 3)
	mustSameHits(t, searchAll(t, recovered, queries, 5), searchAll(t, reference, queries, 5))

	// The recovered library journals typed records from here on; deleting
	// a legacy-registered video must survive the next crash (the probe
	// keyed its frame, so compaction could drop it too).
	if err := recovered.DeleteVideo("legacy-00"); err != nil {
		t.Fatal(err)
	}
	if err := recovered.Close(); err != nil {
		t.Fatal(err)
	}
	again, err := Recover(dir, a, quietWAL())
	if err != nil {
		t.Fatal(err)
	}
	defer again.Close()
	if again.Video("legacy-00") != nil {
		t.Fatal("tombstone over a legacy registration lost across recovery")
	}
	if got := again.Stats().Videos; got != videos-1 {
		t.Fatalf("recovered %d videos after legacy delete, want %d", got, videos-1)
	}
}
