//go:build !race

package classminer_test

// raceDetectorOn mirrors the package classminer raceEnabled constant for the
// external test package: alloc-count assertions are skipped under the race
// detector (instrumentation and sync.Pool behave differently there by design).
const raceDetectorOn = false
