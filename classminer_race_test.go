package classminer

// Concurrency contract of the serving layer: queries (Search,
// ScenesByEvent, browsing accessors, Save) keep answering — from the
// current copy-on-write index snapshot — while writers mine new videos,
// register them and swap rebuilt indexes underneath. These tests are the
// reason `go test -race ./...` is a tier-1 gate; without -race they only
// prove liveness.

import (
	"io"
	"math/rand"
	"sync"
	"testing"

	"classminer/internal/synth"
)

// raceVideo generates a small scripted video quickly (no corpus scaling).
func raceVideo(t testing.TB, name string, seed int64) *Video {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	script := &synth.Script{Name: name, Scenes: []synth.SceneSpec{
		synth.PresentationScene(rng, int(seed)%5, 1, 1),
		synth.DialogScene(rng, (int(seed)+1)%5, 2, 2, 3),
		synth.EstablishingScene(rng, (int(seed)+2)%5, 3),
	}}
	v, err := synth.Generate(synth.DefaultConfig(), script, seed)
	if err != nil {
		t.Fatal(err)
	}
	return v
}

func TestLibraryConcurrentMutationDuringQueries(t *testing.T) {
	a, err := NewAnalyzer(Options{SkipEvents: true})
	if err != nil {
		t.Fatal(err)
	}
	l := NewLibrary(a)
	if _, err := l.AddVideo(raceVideo(t, "seed-video", 31), "medicine"); err != nil {
		t.Fatal(err)
	}
	if err := l.BuildIndex(); err != nil {
		t.Fatal(err)
	}
	query := l.Video("seed-video").Result.Shots[0].Feature()
	admin := User{Name: "admin", Clearance: Administrator}

	stop := make(chan struct{})
	var readers sync.WaitGroup
	for w := 0; w < 6; w++ {
		readers.Add(1)
		go func(w int) {
			defer readers.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				switch i % 6 {
				case 0:
					hits, stats, err := l.Search(admin, query, 4)
					if err != nil || len(hits) == 0 || stats.DistanceOps == 0 {
						t.Errorf("search during writes: hits=%d err=%v", len(hits), err)
						return
					}
				case 5:
					batch, _, err := l.SearchBatch(admin, [][]float64{query, query}, 3)
					if err != nil || len(batch) != 2 || len(batch[0]) == 0 {
						t.Errorf("batch search during writes: %d err=%v", len(batch), err)
						return
					}
				case 1:
					l.ScenesByEvent(admin, EventDialog)
				case 2:
					_ = l.VideoNames()
					_ = l.Video("seed-video")
				case 3:
					_ = l.Stats()
					_ = l.Generation()
					_ = l.IndexStale()
				case 4:
					if err := l.Save(io.Discard); err != nil {
						t.Errorf("save during writes: %v", err)
						return
					}
				}
			}
		}(w)
	}

	// Writers: mine + register new videos and swap rebuilt indexes while
	// the readers above never stop answering.
	var writers sync.WaitGroup
	for i := 0; i < 3; i++ {
		writers.Add(1)
		go func(i int) {
			defer writers.Done()
			name := []string{"w-alpha", "w-beta", "w-gamma"}[i]
			if _, err := l.AddVideo(raceVideo(t, name, int64(50+i)), "nursing"); err != nil {
				t.Errorf("AddVideo %s: %v", name, err)
				return
			}
			if err := l.BuildIndex(); err != nil {
				t.Errorf("BuildIndex after %s: %v", name, err)
			}
			l.Protect(Rule{Concept: "nursing/other", MinClearance: Student})
		}(i)
	}
	writers.Wait()
	close(stop)
	readers.Wait()

	st := l.Stats()
	if st.Videos != 4 {
		t.Fatalf("videos = %d, want 4", st.Videos)
	}
	if l.IndexStale() {
		t.Fatal("index stale after final BuildIndex")
	}
	if st.IndexedShots != st.Shots {
		t.Fatalf("indexed %d of %d shots", st.IndexedShots, st.Shots)
	}
	hits, _, err := l.Search(admin, query, 4)
	if err != nil || len(hits) == 0 {
		t.Fatalf("final search: hits=%d err=%v", len(hits), err)
	}
}

// TestLibraryStaleIndexKeepsServing pins the copy-on-write behaviour:
// registering a video never interrupts serving — the index absorbs the new
// entries incrementally (searchable at once, not stale), and a later full
// rebuild swaps in without a gap.
func TestLibraryStaleIndexKeepsServing(t *testing.T) {
	a, err := NewAnalyzer(Options{SkipEvents: true})
	if err != nil {
		t.Fatal(err)
	}
	l := NewLibrary(a)
	if _, err := l.AddVideo(raceVideo(t, "first", 71), "medicine"); err != nil {
		t.Fatal(err)
	}
	if err := l.BuildIndex(); err != nil {
		t.Fatal(err)
	}
	gen := l.Generation()
	query := l.Video("first").Result.Shots[0].Feature()
	if _, err := l.AddVideo(raceVideo(t, "second", 72), "medicine"); err != nil {
		t.Fatal(err)
	}
	// Incremental maintenance absorbs the registration into the serving
	// index immediately: not stale, and the new video is searchable with no
	// BuildIndex in between.
	if l.IndexStale() {
		t.Fatal("index stale after registration (incremental insert should keep it current)")
	}
	if l.Generation() == gen {
		t.Fatal("generation did not advance on registration")
	}
	second := l.Video("second").Result.Shots[0].Feature()
	hits, _, err := l.Search(User{Clearance: Administrator}, second, 3)
	if err != nil || len(hits) == 0 || hits[0].Entry.VideoName != "second" {
		t.Fatalf("freshly registered video not searchable: hits=%v err=%v", hits, err)
	}
	if hits, _, err = l.Search(User{Clearance: Administrator}, query, 3); err != nil || len(hits) == 0 {
		t.Fatalf("index stopped serving: hits=%d err=%v", len(hits), err)
	}
	if err := l.BuildIndex(); err != nil {
		t.Fatal(err)
	}
	if l.IndexStale() {
		t.Fatal("index still stale after rebuild")
	}
	st := l.Stats()
	if st.IndexedShots != st.Shots {
		t.Fatalf("indexed %d of %d shots", st.IndexedShots, st.Shots)
	}
}
