package classminer

import (
	"fmt"
	"math"
	"testing"
)

// TestIncrementalGoldenEquivalence is the ISSUE 5 acceptance check: a
// library whose index was maintained incrementally (registrations inserted,
// a deletion masked — no refit) answers queries identically to the same
// library after a full BuildIndex refit, while the churn stays inside the
// staleness budget. Identity means the same (video, shot) ranking; the
// distances agree to floating-point tolerance because the 12-dim features
// make every PCA a full-rank rotation.
func TestIncrementalGoldenEquivalence(t *testing.T) {
	a, err := NewAnalyzer(Options{SkipEvents: true})
	if err != nil {
		t.Fatal(err)
	}
	lib := NewLibrary(a)
	const base = 8
	for i := 0; i < base; i++ {
		if err := lib.AddResult(tinyResult(t, fmt.Sprintf("base-%d", i), int64(i), 3), "medicine"); err != nil {
			t.Fatal(err)
		}
	}
	if err := lib.BuildIndex(); err != nil {
		t.Fatal(err)
	}

	// Churn within budget: one new video in, one old video out.
	if err := lib.AddResult(tinyResult(t, "delta-0", 100, 3), "medicine"); err != nil {
		t.Fatal(err)
	}
	if err := lib.DeleteVideo("base-2"); err != nil {
		t.Fatal(err)
	}
	if lib.IndexStale() {
		t.Fatal("index stale after incremental insert+delete")
	}
	if s := lib.IndexStaleness(); s <= 0 || s > 0.3 {
		t.Fatalf("staleness = %v, want within (0, 0.3]", s)
	}
	if lib.RebuildNeeded(0.5) {
		t.Fatal("RebuildNeeded(0.5) true though churn is within budget")
	}
	if !lib.RebuildNeeded(0.1) {
		t.Fatal("RebuildNeeded(0.1) false though churn exceeds that budget")
	}

	u := User{Name: "admin", Clearance: Administrator}
	queries := fixedQueries(12, 12, 99)
	// k larger than the library ranks every live entry — full deterministic
	// ordering, nothing left to the hash shells.
	k := lib.Size() + 5
	before := searchAll(t, lib, queries, k)

	if err := lib.BuildIndex(); err != nil {
		t.Fatal(err)
	}
	if got := lib.IndexStaleness(); got != 0 {
		t.Fatalf("staleness after refit = %v, want 0", got)
	}
	after := searchAll(t, lib, queries, k)

	for qi := range queries {
		if len(before[qi]) != len(after[qi]) {
			t.Fatalf("query %d: %d hits incremental vs %d rebuilt", qi, len(before[qi]), len(after[qi]))
		}
		for hi := range before[qi] {
			b, r := before[qi][hi], after[qi][hi]
			if b.Entry.VideoName != r.Entry.VideoName || b.Entry.Shot.Index != r.Entry.Shot.Index {
				t.Fatalf("query %d hit %d: incremental (%s,%d) vs rebuilt (%s,%d)", qi, hi,
					b.Entry.VideoName, b.Entry.Shot.Index, r.Entry.VideoName, r.Entry.Shot.Index)
			}
			if math.Abs(b.Dist-r.Dist) > 1e-9 {
				t.Fatalf("query %d hit %d: dist %g vs %g", qi, hi, b.Dist, r.Dist)
			}
		}
		for _, h := range before[qi] {
			if h.Entry.VideoName == "base-2" {
				t.Fatal("incremental index still ranks the deleted video")
			}
		}
	}

	// Smaller k (hash-shell regime) still serves without error after the
	// refit; candidate recall at low k is the hash approximation's own
	// property, tested in internal/index.
	if _, _, err := lib.Search(u, queries[0], 3); err != nil {
		t.Fatal(err)
	}
}

// TestLibrarySearchIntoZeroAlloc: the policy-filtered library search path
// reuses caller scratch end to end — after inserts, steady state allocates
// nothing per query.
func TestLibrarySearchIntoZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("alloc counts are not meaningful under the race detector")
	}
	a, err := NewAnalyzer(Options{SkipEvents: true})
	if err != nil {
		t.Fatal(err)
	}
	lib := NewLibrary(a)
	for i := 0; i < 6; i++ {
		if err := lib.AddResult(tinyResult(t, fmt.Sprintf("za-%d", i), int64(i), 3), "medicine"); err != nil {
			t.Fatal(err)
		}
	}
	if err := lib.BuildIndex(); err != nil {
		t.Fatal(err)
	}
	if err := lib.AddResult(tinyResult(t, "za-extra", 50, 3), "medicine"); err != nil {
		t.Fatal(err)
	}
	u := User{Name: "admin", Clearance: Administrator}
	q := fixedQueries(1, 12, 5)[0]
	dst := make([]SearchHit, 0, 16)
	for i := 0; i < 8; i++ { // warm the scratch pool
		dst, _, err = lib.SearchInto(dst[:0], u, q, 10)
		if err != nil {
			t.Fatal(err)
		}
	}
	avg := testing.AllocsPerRun(200, func() {
		dst, _, _ = lib.SearchInto(dst[:0], u, q, 10)
	})
	if avg != 0 {
		t.Fatalf("Library.SearchInto allocates %.1f per run, want 0", avg)
	}
}

// TestIncrementalRegistrationImmediatelySearchable pins the write-path
// guarantee: after AddResult on an indexed library, the new video's own
// shots are its top self-query answers with no BuildIndex call.
func TestIncrementalRegistrationImmediatelySearchable(t *testing.T) {
	a, err := NewAnalyzer(Options{SkipEvents: true})
	if err != nil {
		t.Fatal(err)
	}
	lib := NewLibrary(a)
	for i := 0; i < 4; i++ {
		if err := lib.AddResult(tinyResult(t, fmt.Sprintf("seed-%d", i), int64(i), 3), "medicine"); err != nil {
			t.Fatal(err)
		}
	}
	if err := lib.BuildIndex(); err != nil {
		t.Fatal(err)
	}
	u := User{Name: "admin", Clearance: Administrator}
	for i := 0; i < 6; i++ {
		name := fmt.Sprintf("live-%d", i)
		res := tinyResult(t, name, int64(200+i), 3)
		if err := lib.AddResult(res, "medicine"); err != nil {
			t.Fatal(err)
		}
		hits, _, err := lib.Search(u, res.Shots[0].Feature(), 1)
		if err != nil {
			t.Fatal(err)
		}
		if len(hits) == 0 || hits[0].Entry.VideoName != name {
			t.Fatalf("video %q not searchable immediately after registration", name)
		}
	}
	// Replacement swaps content in the serving index immediately too.
	repl := tinyResult(t, "live-0", 999, 3)
	if err := lib.ReplaceResult(repl, "medicine"); err != nil {
		t.Fatal(err)
	}
	if lib.IndexStale() {
		t.Fatal("index stale after replace")
	}
	hits, _, err := lib.Search(u, repl.Shots[0].Feature(), 1)
	if err != nil || len(hits) == 0 || hits[0].Entry.VideoName != "live-0" {
		t.Fatalf("replacement not searchable: hits=%v err=%v", hits, err)
	}
	if hits[0].Entry.Shot.Start != repl.Shots[0].Start {
		t.Fatal("search still answers from the replaced content")
	}
}
